#include "lcp/runtime/executor.h"

#include <algorithm>

#include "lcp/base/strings.h"

namespace lcp {

namespace {

/// Runs one access command; appends retrieved rows to env[output_table].
Result<size_t> RunAccess(const AccessCommand& access, const Schema& schema,
                         SimulatedSource& source, TableEnv& env) {
  const AccessMethod& method = schema.access_method(access.method);
  const int num_inputs = static_cast<int>(method.input_positions.size());

  // Resolve where each input position gets its value: a column of the input
  // expression or a constant.
  std::vector<int> column_of(num_inputs, -1);
  std::vector<Value> constant_of(num_inputs);
  std::vector<bool> is_constant(num_inputs, false);

  Table input_table;
  if (access.input != nullptr) {
    LCP_ASSIGN_OR_RETURN(input_table, EvaluateRa(*access.input, env));
  }
  for (const auto& [attr, pos] : access.input_binding) {
    auto it = std::find(method.input_positions.begin(),
                        method.input_positions.end(), pos);
    if (it == method.input_positions.end()) {
      return InvalidArgumentError(StrCat("plan binds position ", pos,
                                         " which is not an input of ",
                                         method.name));
    }
    int slot = static_cast<int>(it - method.input_positions.begin());
    column_of[slot] = input_table.AttrIndex(attr);
    if (column_of[slot] < 0) {
      return InvalidArgumentError(
          StrCat("input attribute ", attr, " missing for ", method.name));
    }
  }
  for (const auto& [pos, value] : access.constant_inputs) {
    auto it = std::find(method.input_positions.begin(),
                        method.input_positions.end(), pos);
    if (it == method.input_positions.end()) {
      return InvalidArgumentError(StrCat("plan binds constant to position ",
                                         pos, " which is not an input of ",
                                         method.name));
    }
    int slot = static_cast<int>(it - method.input_positions.begin());
    is_constant[slot] = true;
    constant_of[slot] = value;
  }
  for (int slot = 0; slot < num_inputs; ++slot) {
    if (!is_constant[slot] && column_of[slot] < 0) {
      return InvalidArgumentError(
          StrCat("input position ", method.input_positions[slot], " of ",
                 method.name, " is unbound"));
    }
  }

  // Distinct input bindings.
  std::unordered_set<Tuple, TupleHash> bindings;
  if (access.input != nullptr) {
    for (const Tuple& row : input_table.rows()) {
      Tuple binding(num_inputs);
      for (int slot = 0; slot < num_inputs; ++slot) {
        binding[slot] =
            is_constant[slot] ? constant_of[slot] : row[column_of[slot]];
      }
      bindings.insert(std::move(binding));
    }
  } else {
    Tuple binding(num_inputs);
    for (int slot = 0; slot < num_inputs; ++slot) {
      if (!is_constant[slot]) {
        return InvalidArgumentError(
            StrCat("access to ", method.name,
                   " has no input expression but unbound inputs"));
      }
      binding[slot] = constant_of[slot];
    }
    bindings.insert(std::move(binding));
  }

  // Output table schema.
  std::vector<std::string> out_attrs;
  out_attrs.reserve(access.output_columns.size());
  for (const auto& [attr, pos] : access.output_columns) {
    out_attrs.push_back(attr);
  }
  Table& out = env.emplace(access.output_table, Table(out_attrs)).first->second;

  size_t calls = 0;
  for (const Tuple& binding : bindings) {
    ++calls;
    for (const Tuple& tuple : source.Access(access.method, binding)) {
      bool keep = true;
      for (const auto& [a, b] : access.position_equalities) {
        if (tuple[a] != tuple[b]) {
          keep = false;
          break;
        }
      }
      if (keep) {
        for (const auto& [pos, value] : access.position_constants) {
          if (tuple[pos] != value) {
            keep = false;
            break;
          }
        }
      }
      if (!keep) continue;
      Tuple row;
      row.reserve(access.output_columns.size());
      for (const auto& [attr, pos] : access.output_columns) {
        row.push_back(tuple[pos]);
      }
      out.Insert(std::move(row));
    }
  }
  return calls;
}

}  // namespace

Result<ExecutionResult> ExecutePlan(const Plan& plan, SimulatedSource& source,
                                    TableEnv* final_env) {
  ExecutionResult result;
  TableEnv env;
  for (const Command& cmd : plan.commands) {
    if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
      ++result.access_commands;
      LCP_ASSIGN_OR_RETURN(
          size_t calls, RunAccess(*access, source.schema(), source, env));
      result.source_calls += calls;
    } else {
      const QueryCommand& query = std::get<QueryCommand>(cmd);
      LCP_ASSIGN_OR_RETURN(Table table, EvaluateRa(*query.expr, env));
      env[query.output_table] = std::move(table);
    }
  }
  auto it = env.find(plan.output_table);
  if (it == env.end()) {
    return InvalidArgumentError(
        StrCat("plan output table ", plan.output_table, " never produced"));
  }
  if (!plan.output_attrs.empty()) {
    LCP_ASSIGN_OR_RETURN(
        result.output,
        EvaluateRa(*RaExpr::Project(RaExpr::TempScan(plan.output_table),
                                    plan.output_attrs),
                   env));
  } else {
    // Boolean plan: output is the nullary projection (empty vs. non-empty).
    Table boolean{std::vector<std::string>{}};
    if (!it->second.empty()) boolean.Insert(Tuple{});
    result.output = std::move(boolean);
  }
  if (final_env != nullptr) *final_env = std::move(env);
  return result;
}

}  // namespace lcp
