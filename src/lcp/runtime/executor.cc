#include "lcp/runtime/executor.h"

#include <algorithm>
#include <functional>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "lcp/base/check.h"
#include "lcp/base/strings.h"
#include "lcp/base/work_steal.h"
#include "lcp/ra/batch.h"
#include "lcp/ra/morsel.h"

namespace lcp {

namespace {

/// Retry-layer state threaded through one ExecutePlan call: the policy, the
/// clock, the jitter PRNG, per-method circuit breakers, and the absolute
/// plan deadline. Deadlines are only consulted inside access loops — that is
/// where execution time goes (source latency and backoff waits); in-memory
/// middleware commands run to completion.
struct RetryState {
  RetryState(const ExecutionOptions& options, const Schema& schema,
             ExecutionResult& result)
      : policy(options.retry),
        clock(options.clock != nullptr ? options.clock
                                       : SystemClock::Instance()),
        cancel(options.cancel),
        health(options.health),
        jitter_prng(options.retry.jitter_seed),
        result(&result) {
    if (policy.breaker_threshold > 0) {
      consecutive_failures.assign(schema.num_access_methods(), 0);
      breaker_open.assign(schema.num_access_methods(), 0);
    }
    if (policy.plan_deadline_micros >= 0) {
      plan_deadline_abs = clock->NowMicros() + policy.plan_deadline_micros;
    }
  }

  const RetryPolicy& policy;
  Clock* clock;
  const CancelToken* cancel;
  SourceHealthRegistry* health;
  std::mt19937_64 jitter_prng;
  ExecutionResult* result;
  std::vector<int> consecutive_failures;
  std::vector<char> breaker_open;
  int64_t plan_deadline_abs = -1;
};

/// Bounded exponential backoff before the retry that follows a failed
/// attempt number `failed_attempt` (1-based), with deterministic jitter.
/// Charges the clock and the stats.
void BackoffBeforeRetry(int failed_attempt, RetryState& rs) {
  const RetryPolicy& p = rs.policy;
  RetryStats& stats = rs.result->retry;
  int64_t backoff = p.initial_backoff_micros;
  for (int i = 1; i < failed_attempt && backoff < p.max_backoff_micros; ++i) {
    backoff = static_cast<int64_t>(static_cast<double>(backoff) *
                                   p.backoff_multiplier);
  }
  backoff = std::min(backoff, p.max_backoff_micros);
  if (p.jitter_fraction > 0) {
    const double unit = static_cast<double>(rs.jitter_prng() >> 11) * 0x1.0p-53;
    backoff = static_cast<int64_t>(static_cast<double>(backoff) *
                                   (1.0 - p.jitter_fraction * unit));
  }
  if (backoff > 0) {
    rs.clock->SleepMicros(backoff);
    stats.backoff_micros += backoff;
  }
  stats.backoff_schedule.push_back(backoff);
  ++stats.retries;
}

/// One logical access (one binding) with bounded-exponential-backoff retry,
/// circuit breaking, and deadline enforcement.
Result<AccessOutcome> AccessWithRetry(AccessSource& source,
                                      AccessMethodId method,
                                      const Tuple& binding, RetryState& rs) {
  const RetryPolicy& p = rs.policy;
  RetryStats& stats = rs.result->retry;

  if (p.breaker_threshold > 0 && rs.breaker_open[method]) {
    ++stats.breaker_short_circuits;
    return UnavailableError(StrCat("circuit breaker open for method ",
                                   source.schema().access_method(method).name));
  }

  int64_t access_deadline_abs = -1;
  if (p.access_deadline_micros >= 0) {
    access_deadline_abs = rs.clock->NowMicros() + p.access_deadline_micros;
  }

  Status last_failure;
  for (int attempt = 1;; ++attempt) {
    if (rs.cancel != nullptr && rs.cancel->cancelled()) {
      return Status(rs.cancel->code(),
                    StrCat("execution cancelled before attempt ", attempt,
                           " of access to ",
                           source.schema().access_method(method).name));
    }
    if (rs.plan_deadline_abs >= 0 || access_deadline_abs >= 0) {
      const int64_t now = rs.clock->NowMicros();
      if ((rs.plan_deadline_abs >= 0 && now >= rs.plan_deadline_abs) ||
          (access_deadline_abs >= 0 && now >= access_deadline_abs)) {
        ++stats.deadline_abandons;
        return DeadlineExceededError(
            StrCat("deadline expired before attempt ", attempt,
                   " of access to ",
                   source.schema().access_method(method).name));
      }
    }

    ++stats.attempts;
    Result<AccessOutcome> outcome = source.TryAccess(method, binding);
    if (outcome.ok()) {
      if (p.breaker_threshold > 0) rs.consecutive_failures[method] = 0;
      return outcome;
    }
    if (outcome.status().code() != StatusCode::kUnavailable) {
      // Permanent error (bad arity, internal failure): never retried.
      return outcome.status();
    }
    ++stats.failures;
    last_failure = outcome.status();

    if (p.breaker_threshold > 0 &&
        ++rs.consecutive_failures[method] >= p.breaker_threshold) {
      rs.breaker_open[method] = 1;
      ++stats.breaker_trips;
      return UnavailableError(
          StrCat("circuit breaker tripped for method ",
                 source.schema().access_method(method).name, " after ",
                 rs.consecutive_failures[method],
                 " consecutive failures; last: ", last_failure.message()));
    }
    if (attempt >= p.max_attempts) return last_failure;
    BackoffBeforeRetry(attempt, rs);
  }
}

/// Continues the retry loop for a binding whose *batched* first attempt
/// failed transiently: attempts 2..max_attempts with the usual backoff and
/// per-attempt cancel/deadline gates. Only used on the batched dispatch
/// path, where no breaker is armed.
Result<AccessOutcome> ResumeRetriesAfterBatchFailure(AccessSource& source,
                                                     AccessMethodId method,
                                                     const Tuple& binding,
                                                     Status last_failure,
                                                     RetryState& rs) {
  const RetryPolicy& p = rs.policy;
  RetryStats& stats = rs.result->retry;

  int64_t access_deadline_abs = -1;
  if (p.access_deadline_micros >= 0) {
    access_deadline_abs = rs.clock->NowMicros() + p.access_deadline_micros;
  }

  for (int failed_attempt = 1;; ++failed_attempt) {
    if (failed_attempt >= p.max_attempts) return last_failure;
    BackoffBeforeRetry(failed_attempt, rs);

    const int attempt = failed_attempt + 1;
    if (rs.cancel != nullptr && rs.cancel->cancelled()) {
      return Status(rs.cancel->code(),
                    StrCat("execution cancelled before attempt ", attempt,
                           " of access to ",
                           source.schema().access_method(method).name));
    }
    if (rs.plan_deadline_abs >= 0 || access_deadline_abs >= 0) {
      const int64_t now = rs.clock->NowMicros();
      if ((rs.plan_deadline_abs >= 0 && now >= rs.plan_deadline_abs) ||
          (access_deadline_abs >= 0 && now >= access_deadline_abs)) {
        ++stats.deadline_abandons;
        return DeadlineExceededError(
            StrCat("deadline expired before attempt ", attempt,
                   " of access to ",
                   source.schema().access_method(method).name));
      }
    }

    ++stats.attempts;
    Result<AccessOutcome> outcome = source.TryAccess(method, binding);
    if (outcome.ok()) return outcome;
    if (outcome.status().code() != StatusCode::kUnavailable) {
      return outcome.status();
    }
    ++stats.failures;
    last_failure = outcome.status();
  }
}

/// Records an access binding that could not be answered (exhausted retries,
/// open breaker, or deadline). In best-effort mode the binding's rows are
/// simply missing from the output and execution continues.
bool DegradeOrFail(const Status& failure, RetryState& rs) {
  const StatusCode code = failure.code();
  // A tripped cancel token always aborts: degrading would keep walking the
  // remaining bindings of a request nobody is waiting for.
  if (rs.cancel != nullptr && rs.cancel->cancelled()) return false;
  if (!rs.policy.best_effort || (code != StatusCode::kUnavailable &&
                                 code != StatusCode::kDeadlineExceeded)) {
    return false;
  }
  rs.result->complete = false;
  ++rs.result->degraded_accesses;
  return true;
}

/// Consumes one successful binding answer: `rows` plus the truncation flag.
using ConsumeRows = std::function<void(const std::vector<Tuple>& rows)>;

/// Marks a truncated outcome on the execution result.
void NoteTruncation(bool truncated, RetryState& rs) {
  if (!truncated) return;
  rs.result->complete = false;
  ++rs.result->degraded_accesses;
}

/// Feeds the final outcome of one binding to the source-health registry
/// (when tracking is on). Only kUnavailable counts as a source failure —
/// deadline expiries and cancellations are caller-side verdicts; permanent
/// errors (bad arity etc.) are plan bugs, not source sickness.
void ReportBindingOutcome(AccessMethodId method, const Tuple& binding,
                          const Status& final_status, RetryState& rs) {
  if (rs.health == nullptr) return;
  if (final_status.ok()) {
    rs.health->RecordSuccess(method);
  } else if (final_status.code() == StatusCode::kUnavailable) {
    rs.health->RecordFailure(method, binding);
  }
}

/// Runs every binding of one access command against the source and feeds
/// each successful answer to `consume`, in binding order. This is the
/// shared dispatch layer of both engines, so their source access sequences
/// (and therefore seeded fault schedules) are identical by construction.
///
/// Fast path: one TryAccessBatch call for the whole batch of bindings;
/// bindings whose batched first attempt failed transiently continue through
/// the per-binding retry loop. With a circuit breaker armed, dispatch stays
/// per-binding (sequential AccessWithRetry) so an opened breaker keeps the
/// remaining bindings away from the source — batching an admission decision
/// would defeat it.
Status DispatchBindings(AccessSource& source, AccessMethodId method,
                        const std::vector<Tuple>& bindings, RetryState& rs,
                        const ConsumeRows& consume) {
  if (bindings.empty()) return Status::Ok();

  if (rs.policy.breaker_threshold > 0) {
    for (const Tuple& binding : bindings) {
      Result<AccessOutcome> outcome =
          AccessWithRetry(source, method, binding, rs);
      ReportBindingOutcome(method, binding, outcome.status(), rs);
      if (!outcome.ok()) {
        if (DegradeOrFail(outcome.status(), rs)) continue;
        return outcome.status();
      }
      ++rs.result->source_calls;
      NoteTruncation(outcome->truncated, rs);
      consume(*outcome->tuples);
    }
    return Status::Ok();
  }

  ++rs.result->exec.access_batches;
  rs.result->exec.access_bindings += bindings.size();
  std::vector<BatchEntryOutcome> outcomes;
  source.TryAccessBatch(method, bindings, outcomes);
  LCP_CHECK_EQ(outcomes.size(), bindings.size())
      << "TryAccessBatch must answer every binding";

  RetryStats& stats = rs.result->retry;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    BatchEntryOutcome& entry = outcomes[i];
    if (rs.cancel != nullptr && rs.cancel->cancelled()) {
      return Status(rs.cancel->code(),
                    StrCat("execution cancelled while consuming batched "
                           "access to ",
                           source.schema().access_method(method).name));
    }
    ++stats.attempts;
    if (rs.plan_deadline_abs >= 0 || rs.policy.access_deadline_micros == 0) {
      const int64_t now = rs.clock->NowMicros();
      if ((rs.plan_deadline_abs >= 0 && now >= rs.plan_deadline_abs) ||
          rs.policy.access_deadline_micros == 0) {
        ++stats.deadline_abandons;
        Status expired = DeadlineExceededError(
            StrCat("deadline expired consuming batched access to ",
                   source.schema().access_method(method).name));
        if (DegradeOrFail(expired, rs)) continue;
        return expired;
      }
    }
    if (entry.status.ok()) {
      ReportBindingOutcome(method, bindings[i], entry.status, rs);
      ++rs.result->source_calls;
      NoteTruncation(entry.truncated, rs);
      consume(entry.Rows());
      continue;
    }
    if (entry.status.code() != StatusCode::kUnavailable) {
      // Permanent error: never retried, always aborts the plan.
      return entry.status;
    }
    ++stats.failures;
    Result<AccessOutcome> retried = ResumeRetriesAfterBatchFailure(
        source, method, bindings[i], entry.status, rs);
    ReportBindingOutcome(method, bindings[i], retried.status(), rs);
    if (!retried.ok()) {
      if (DegradeOrFail(retried.status(), rs)) continue;
      return retried.status();
    }
    ++rs.result->source_calls;
    NoteTruncation(retried->truncated, rs);
    consume(*retried->tuples);
  }
  return Status::Ok();
}

/// How each input slot of an access method gets its value: a column of the
/// input expression's result, or a constant from the plan.
struct AccessInputSpec {
  int num_inputs = 0;
  std::vector<int> column_of;
  std::vector<Value> constant_of;
  std::vector<bool> is_constant;
};

/// Resolves the plan's input bindings against the method signature.
/// `attr_index` maps an input attribute name to its column (or -1).
Result<AccessInputSpec> ResolveAccessInputs(
    const AccessCommand& access, const AccessMethod& method,
    const std::function<int(const std::string&)>& attr_index) {
  AccessInputSpec spec;
  spec.num_inputs = static_cast<int>(method.input_positions.size());
  spec.column_of.assign(spec.num_inputs, -1);
  spec.constant_of.assign(spec.num_inputs, Value());
  spec.is_constant.assign(spec.num_inputs, false);

  for (const auto& [attr, pos] : access.input_binding) {
    auto it = std::find(method.input_positions.begin(),
                        method.input_positions.end(), pos);
    if (it == method.input_positions.end()) {
      return InvalidArgumentError(StrCat("plan binds position ", pos,
                                         " which is not an input of ",
                                         method.name));
    }
    int slot = static_cast<int>(it - method.input_positions.begin());
    spec.column_of[slot] = attr_index(attr);
    if (spec.column_of[slot] < 0) {
      return InvalidArgumentError(
          StrCat("input attribute ", attr, " missing for ", method.name));
    }
  }
  for (const auto& [pos, value] : access.constant_inputs) {
    auto it = std::find(method.input_positions.begin(),
                        method.input_positions.end(), pos);
    if (it == method.input_positions.end()) {
      return InvalidArgumentError(StrCat("plan binds constant to position ",
                                         pos, " which is not an input of ",
                                         method.name));
    }
    int slot = static_cast<int>(it - method.input_positions.begin());
    spec.is_constant[slot] = true;
    spec.constant_of[slot] = value;
  }
  for (int slot = 0; slot < spec.num_inputs; ++slot) {
    if (!spec.is_constant[slot] && spec.column_of[slot] < 0) {
      return InvalidArgumentError(
          StrCat("input position ", method.input_positions[slot], " of ",
                 method.name, " is unbound"));
    }
  }
  return spec;
}

/// The all-constant binding of an input-free access command (the paper's ∅
/// convention), or an error if some input slot is unbound.
Result<Tuple> ConstantOnlyBinding(const AccessInputSpec& spec,
                                  const AccessMethod& method) {
  Tuple binding(spec.num_inputs);
  for (int slot = 0; slot < spec.num_inputs; ++slot) {
    if (!spec.is_constant[slot]) {
      return InvalidArgumentError(
          StrCat("access to ", method.name,
                 " has no input expression but unbound inputs"));
    }
    binding[slot] = spec.constant_of[slot];
  }
  return binding;
}

/// True iff `tuple` passes the access command's position selections.
bool PassesPositionFilters(const AccessCommand& access, const Tuple& tuple) {
  for (const auto& [a, b] : access.position_equalities) {
    if (tuple[a] != tuple[b]) return false;
  }
  for (const auto& [pos, value] : access.position_constants) {
    if (tuple[pos] != value) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Row-oracle engine
// ---------------------------------------------------------------------------

/// Runs one access command; appends retrieved rows to env[output_table].
Status RunAccessRow(const AccessCommand& access, const Schema& schema,
                    AccessSource& source, TableEnv& env, RetryState& rs) {
  const AccessMethod& method = schema.access_method(access.method);

  Table input_table;
  if (access.input != nullptr) {
    LCP_ASSIGN_OR_RETURN(input_table, EvaluateRa(*access.input, env));
  }
  LCP_ASSIGN_OR_RETURN(
      AccessInputSpec spec,
      ResolveAccessInputs(access, method, [&](const std::string& attr) {
        return input_table.AttrIndex(attr);
      }));

  // Distinct input bindings, in first-appearance order (the canonical
  // binding order both engines share).
  std::vector<Tuple> bindings;
  if (access.input != nullptr) {
    std::unordered_set<Tuple, TupleHash> seen;
    seen.reserve(input_table.size());
    for (const Tuple& row : input_table.rows()) {
      Tuple binding(spec.num_inputs);
      for (int slot = 0; slot < spec.num_inputs; ++slot) {
        binding[slot] = spec.is_constant[slot] ? spec.constant_of[slot]
                                               : row[spec.column_of[slot]];
      }
      if (seen.insert(binding).second) bindings.push_back(std::move(binding));
    }
  } else {
    LCP_ASSIGN_OR_RETURN(Tuple binding, ConstantOnlyBinding(spec, method));
    bindings.push_back(std::move(binding));
  }

  // Output table schema.
  std::vector<std::string> out_attrs;
  out_attrs.reserve(access.output_columns.size());
  for (const auto& [attr, pos] : access.output_columns) {
    out_attrs.push_back(attr);
  }
  Table& out = env.emplace(access.output_table, Table(out_attrs)).first->second;

  return DispatchBindings(
      source, access.method, bindings, rs,
      [&](const std::vector<Tuple>& rows) {
        for (const Tuple& tuple : rows) {
          if (!PassesPositionFilters(access, tuple)) continue;
          Tuple row;
          row.reserve(access.output_columns.size());
          for (const auto& [attr, pos] : access.output_columns) {
            row.push_back(tuple[pos]);
          }
          out.Insert(std::move(row));
        }
      });
}

Result<ExecutionResult> ExecutePlanRow(const Plan& plan, AccessSource& source,
                                       const ExecutionOptions& options,
                                       TableEnv* final_env) {
  ExecutionResult result;
  RetryState rs(options, source.schema(), result);
  TableEnv env;
  for (const Command& cmd : plan.commands) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      return Status(options.cancel->code(),
                    "plan execution cancelled between commands");
    }
    if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
      ++result.access_commands;
      LCP_RETURN_IF_ERROR(
          RunAccessRow(*access, source.schema(), source, env, rs));
    } else {
      const QueryCommand& query = std::get<QueryCommand>(cmd);
      LCP_ASSIGN_OR_RETURN(Table table, EvaluateRa(*query.expr, env));
      env[query.output_table] = std::move(table);
    }
  }
  auto it = env.find(plan.output_table);
  if (it == env.end()) {
    return InvalidArgumentError(
        StrCat("plan output table ", plan.output_table, " never produced"));
  }
  if (!plan.output_attrs.empty()) {
    LCP_ASSIGN_OR_RETURN(
        result.output,
        EvaluateRa(*RaExpr::Project(RaExpr::TempScan(plan.output_table),
                                    plan.output_attrs),
                   env));
  } else {
    // Boolean plan: output is the nullary projection (empty vs. non-empty).
    Table boolean{std::vector<std::string>{}};
    if (!it->second.empty()) boolean.Insert(Tuple{});
    result.output = std::move(boolean);
  }
  if (final_env != nullptr) *final_env = std::move(env);
  return result;
}

// ---------------------------------------------------------------------------
// Vectorized engine
// ---------------------------------------------------------------------------

/// Distinct access bindings in first-appearance order, deduped over term
/// codes (no Value hashing), decoded once per distinct binding at the
/// source boundary. Shared by the sequential access path and the morsel
/// driver's overlapped dispatch.
Result<std::vector<Tuple>> ComputeAccessBindings(const AccessCommand& access,
                                                 const AccessInputSpec& spec,
                                                 const AccessMethod& method,
                                                 const ColumnBatch& input_batch,
                                                 TermPool& pool) {
  std::vector<Tuple> bindings;
  if (access.input != nullptr) {
    std::vector<TermCode> constant_codes(spec.num_inputs, 0);
    for (int slot = 0; slot < spec.num_inputs; ++slot) {
      if (spec.is_constant[slot]) {
        constant_codes[slot] = pool.Intern(spec.constant_of[slot]);
      }
    }
    const size_t n = input_batch.num_rows();
    std::vector<TermCode> key(spec.num_inputs);
    std::vector<std::vector<TermCode>> distinct;  // kept binding code rows
    RowHashIndex seen(n);
    for (size_t i = 0; i < n; ++i) {
      size_t h = 0x811c9dc5;
      for (int slot = 0; slot < spec.num_inputs; ++slot) {
        key[slot] = spec.is_constant[slot]
                        ? constant_codes[slot]
                        : input_batch.At(
                              static_cast<size_t>(spec.column_of[slot]), i);
        h ^= static_cast<size_t>(key[slot]) + 0x9e3779b97f4a7c15ULL;
        h *= 0x01000193;
      }
      bool dup = false;
      seen.ForEachCandidate(h, [&](uint32_t kept) {
        dup = distinct[kept] == key;
        return dup;
      });
      if (dup) continue;
      seen.Insert(h, static_cast<uint32_t>(distinct.size()));
      distinct.push_back(key);
    }
    bindings.reserve(distinct.size());
    for (const std::vector<TermCode>& codes : distinct) {
      Tuple binding;
      binding.reserve(codes.size());
      for (TermCode code : codes) binding.push_back(pool.Decode(code));
      bindings.push_back(std::move(binding));
    }
  } else {
    LCP_ASSIGN_OR_RETURN(Tuple binding, ConstantOnlyBinding(spec, method));
    bindings.push_back(std::move(binding));
  }
  return bindings;
}

/// Stores a fresh access answer batch into the environment with set
/// semantics, appending to an existing table of the same name if the plan
/// reuses it (mirrors the row engine's insert-into-existing-table), and
/// charges the per-access exec stats. `ctx` (nullable) lets the dedup pass
/// go morsel-parallel.
Status StoreAccessOutput(const AccessCommand& access, ColumnBatch fresh,
                         BatchEnv& env, ExecStats& exec,
                         const MorselContext* ctx) {
  auto it = env.find(access.output_table);
  size_t dropped = 0;
  if (it == env.end()) {
    env.emplace(access.output_table,
                DeduplicatedMorsel(fresh, ctx, &exec, &dropped));
  } else {
    // Existing rows first, new rows appended, first appearance wins.
    const ColumnBatch& existing = it->second;
    if (existing.attrs() != fresh.attrs()) {
      return InvalidArgumentError(
          StrCat("access output table ", access.output_table,
                 " reused with different attributes"));
    }
    const size_t en = existing.num_rows();
    const size_t fn = fresh.num_rows();
    std::vector<std::vector<TermCode>> cols(existing.num_attrs());
    for (size_t c = 0; c < existing.num_attrs(); ++c) {
      cols[c].reserve(en + fn);
      for (size_t i = 0; i < en; ++i) cols[c].push_back(existing.At(c, i));
      for (size_t i = 0; i < fn; ++i) cols[c].push_back(fresh.At(c, i));
    }
    it->second = DeduplicatedMorsel(
        ColumnBatch::FromDense(existing.attrs(), std::move(cols), en + fn),
        ctx, &exec, &dropped);
  }
  const ColumnBatch& stored = env.find(access.output_table)->second;
  exec.dedup_drops += dropped;
  ++exec.batches;
  exec.rows_out += stored.num_rows();
  exec.max_batch_rows = std::max(exec.max_batch_rows, stored.num_rows());
  return Status::Ok();
}

/// Runs one access command against the batch environment (the sequential
/// path): evaluates the input expression columnar, dedups bindings over
/// term codes, dispatches one batch, and collects the answers as fresh
/// dictionary-encoded columns.
Status RunAccessVectorized(const AccessCommand& access, const Schema& schema,
                           AccessSource& source, BatchEnv& env, TermPool& pool,
                           RetryState& rs) {
  const AccessMethod& method = schema.access_method(access.method);
  ExecStats& exec = rs.result->exec;

  ColumnBatch input_batch;
  if (access.input != nullptr) {
    LCP_ASSIGN_OR_RETURN(
        input_batch, EvaluateRaVectorized(*access.input, env, pool, &exec));
  }
  LCP_ASSIGN_OR_RETURN(
      AccessInputSpec spec,
      ResolveAccessInputs(access, method, [&](const std::string& attr) {
        return input_batch.AttrIndex(attr);
      }));
  LCP_ASSIGN_OR_RETURN(
      std::vector<Tuple> bindings,
      ComputeAccessBindings(access, spec, method, input_batch, pool));

  // Collect answers column-wise, encoding each kept value once.
  std::vector<std::string> out_attrs;
  out_attrs.reserve(access.output_columns.size());
  for (const auto& [attr, pos] : access.output_columns) {
    out_attrs.push_back(attr);
  }
  std::vector<std::vector<TermCode>> out_cols(out_attrs.size());
  size_t out_rows = 0;
  Status dispatched = DispatchBindings(
      source, access.method, bindings, rs,
      [&](const std::vector<Tuple>& rows) {
        for (const Tuple& tuple : rows) {
          if (!PassesPositionFilters(access, tuple)) continue;
          for (size_t k = 0; k < access.output_columns.size(); ++k) {
            out_cols[k].push_back(
                pool.Intern(tuple[access.output_columns[k].second]));
          }
          ++out_rows;
        }
      });
  LCP_RETURN_IF_ERROR(dispatched);

  ColumnBatch fresh =
      ColumnBatch::FromDense(std::move(out_attrs), std::move(out_cols),
                             out_rows);
  return StoreAccessOutput(access, std::move(fresh), env, exec, nullptr);
}

/// True iff `expr` scans the temporary table `table` anywhere in its tree —
/// the dependency test deciding whether a middleware command may overlap
/// the in-flight access dispatch.
bool ExprReadsTable(const RaExpr& expr, const std::string& table) {
  if (expr.op() == RaExpr::Op::kTempScan) return expr.table() == table;
  for (const auto& child : expr.children()) {
    if (ExprReadsTable(*child, table)) return true;
  }
  return false;
}

/// One in-flight batched access dispatch (morsel driver only). The task
/// runs DispatchBindings on a non-driver worker while the driver evaluates
/// independent middleware commands. At most one access is pending at a
/// time: sources are stateful and their seeded fault schedules are part of
/// the determinism contract, so source dispatch stays serialized in plan
/// order — overlap buys dispatch-vs-operator concurrency, never
/// access-vs-access reordering. The task touches only this struct, the
/// source, and the retry state (all owned by it until Wait returns); in
/// particular it never interns into the TermPool, which stays
/// driver-single-threaded.
struct PendingAccess {
  const AccessCommand* access = nullptr;
  std::vector<std::string> out_attrs;
  std::vector<Tuple> bindings;
  std::vector<Tuple> kept;  // position-filtered answer rows, consume order
  Status dispatch_status;
  MorselScheduler::Async task;
  bool active = false;
};

/// The vectorized command loop, shared by the sequential engine
/// (scheduler == nullptr: the historic byte-identical path) and the morsel
/// driver (worker 0 of a RunWorkers pool).
Result<ExecutionResult> ExecutePlanVectorizedImpl(
    const Plan& plan, AccessSource& source, const ExecutionOptions& options,
    TableEnv* final_env, MorselScheduler* scheduler) {
  ExecutionResult result;
  RetryState rs(options, source.schema(), result);
  TermPool pool;
  BatchEnv env;

  MorselContext ctx_storage;
  const MorselContext* ctx = nullptr;
  if (scheduler != nullptr) {
    ctx_storage.scheduler = scheduler;
    ctx_storage.morsel_rows =
        options.morsel_rows > 0 ? options.morsel_rows : DeriveMorselRows();
    ctx_storage.cancel = options.cancel;
    ctx = &ctx_storage;
  }
  result.exec.exec_workers =
      scheduler != nullptr ? static_cast<size_t>(scheduler->num_workers()) : 1;

  PendingAccess pending;
  // Joins the in-flight access: waits for the dispatch task, then interns
  // the kept rows into columns (driver-side — the pool is single-threaded
  // by design) and stores them with set semantics.
  auto join_pending = [&]() -> Status {
    if (!pending.active) return Status::Ok();
    pending.task.Wait();
    pending.active = false;
    LCP_RETURN_IF_ERROR(pending.dispatch_status);
    const AccessCommand& access = *pending.access;
    std::vector<std::vector<TermCode>> out_cols(pending.out_attrs.size());
    for (auto& col : out_cols) col.reserve(pending.kept.size());
    for (const Tuple& tuple : pending.kept) {
      for (size_t k = 0; k < access.output_columns.size(); ++k) {
        out_cols[k].push_back(
            pool.Intern(tuple[access.output_columns[k].second]));
      }
    }
    ColumnBatch fresh =
        ColumnBatch::FromDense(std::move(pending.out_attrs),
                               std::move(out_cols), pending.kept.size());
    pending.bindings.clear();
    pending.kept.clear();
    return StoreAccessOutput(access, std::move(fresh), env, result.exec, ctx);
  };
  // Launches one access command as an async dispatch task. Input
  // evaluation, input resolution, and binding dedup happen on the driver
  // before launch; only the source dispatch itself runs on a worker.
  auto launch_access = [&](const AccessCommand& access) -> Status {
    const AccessMethod& method = source.schema().access_method(access.method);
    ColumnBatch input_batch;
    if (access.input != nullptr) {
      LCP_ASSIGN_OR_RETURN(
          input_batch,
          EvaluateRaVectorized(*access.input, env, pool, &result.exec, ctx));
    }
    LCP_ASSIGN_OR_RETURN(
        AccessInputSpec spec,
        ResolveAccessInputs(access, method, [&](const std::string& attr) {
          return input_batch.AttrIndex(attr);
        }));
    LCP_ASSIGN_OR_RETURN(
        pending.bindings,
        ComputeAccessBindings(access, spec, method, input_batch, pool));
    pending.access = &access;
    pending.out_attrs.clear();
    pending.out_attrs.reserve(access.output_columns.size());
    for (const auto& [attr, pos] : access.output_columns) {
      pending.out_attrs.push_back(attr);
    }
    pending.kept.clear();
    pending.dispatch_status = Status::Ok();
    pending.active = true;
    pending.task =
        scheduler->SubmitAsync([&pending, &source, &rs, acc = &access] {
          pending.dispatch_status = DispatchBindings(
              source, acc->method, pending.bindings, rs,
              [&](const std::vector<Tuple>& rows) {
                for (const Tuple& tuple : rows) {
                  if (!PassesPositionFilters(*acc, tuple)) continue;
                  pending.kept.push_back(tuple);
                }
              });
        });
    return Status::Ok();
  };

  for (const Command& cmd : plan.commands) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      // The dispatch task aborts at its own cancel gates; wait it out so
      // nothing references this frame after we return.
      if (pending.active) {
        pending.task.Wait();
        pending.active = false;
      }
      return Status(options.cancel->code(),
                    "plan execution cancelled between commands");
    }
    if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
      LCP_RETURN_IF_ERROR(join_pending());
      ++result.access_commands;
      if (scheduler == nullptr) {
        LCP_RETURN_IF_ERROR(RunAccessVectorized(*access, source.schema(),
                                                source, env, pool, rs));
      } else {
        LCP_RETURN_IF_ERROR(launch_access(*access));
      }
    } else {
      const QueryCommand& query = std::get<QueryCommand>(cmd);
      if (pending.active &&
          (query.output_table == pending.access->output_table ||
           ExprReadsTable(*query.expr, pending.access->output_table))) {
        LCP_RETURN_IF_ERROR(join_pending());
      }
      Result<ColumnBatch> batch =
          EvaluateRaVectorized(*query.expr, env, pool, &result.exec, ctx);
      if (!batch.ok()) {
        // Commands fail in plan order: if the overlapped access (an earlier
        // command) also failed, its status wins over this one's.
        Status joined = join_pending();
        return joined.ok() ? batch.status() : joined;
      }
      env[query.output_table] = std::move(*batch);
    }
  }
  LCP_RETURN_IF_ERROR(join_pending());
  if (ctx != nullptr && ctx->Cancelled()) {
    return Status(options.cancel->code(),
                  "plan execution cancelled at morsel boundary");
  }
  auto it = env.find(plan.output_table);
  if (it == env.end()) {
    return InvalidArgumentError(
        StrCat("plan output table ", plan.output_table, " never produced"));
  }
  if (!plan.output_attrs.empty()) {
    LCP_ASSIGN_OR_RETURN(
        ColumnBatch projected,
        EvaluateRaVectorized(*RaExpr::Project(RaExpr::TempScan(
                                                  plan.output_table),
                                              plan.output_attrs),
                             env, pool, &result.exec, ctx));
    if (ctx != nullptr && ctx->Cancelled()) {
      // A morsel of the final projection may have been skipped; never
      // return a partial output with an ok status.
      return Status(options.cancel->code(),
                    "plan execution cancelled at morsel boundary");
    }
    result.output = projected.ToTable(pool);
  } else {
    // Boolean plan: output is the nullary projection (empty vs. non-empty).
    Table boolean{std::vector<std::string>{}};
    if (!it->second.empty()) boolean.Insert(Tuple{});
    result.output = std::move(boolean);
  }
  if (final_env != nullptr) {
    final_env->clear();
    for (const auto& [name, batch] : env) {
      final_env->emplace(name, batch.ToTable(pool));
    }
  }
  return result;
}

Result<ExecutionResult> ExecutePlanVectorized(const Plan& plan,
                                              AccessSource& source,
                                              const ExecutionOptions& options,
                                              TableEnv* final_env) {
  const int workers = options.exec_parallelism;
  if (workers <= 1) {
    return ExecutePlanVectorizedImpl(plan, source, options, final_env,
                                     nullptr);
  }
  // Morsel-parallel: worker 0 drives the plan, workers 1..n-1 execute
  // morsels and the overlapped access dispatch until the driver shuts the
  // scheduler down (base/work_steal.h owns the thread lifecycle).
  MorselScheduler scheduler(workers);
  Result<ExecutionResult> out = InternalError("morsel driver did not run");
  RunWorkers(workers, [&](int id) {
    if (id == 0) {
      out = ExecutePlanVectorizedImpl(plan, source, options, final_env,
                                      &scheduler);
      scheduler.Shutdown();
    } else {
      scheduler.WorkerLoop(id);
    }
  });
  return out;
}

}  // namespace

Result<ExecutionResult> ExecutePlan(const Plan& plan, AccessSource& source,
                                    const ExecutionOptions& options,
                                    TableEnv* final_env) {
  switch (options.engine) {
    case ExecutionEngine::kRowOracle:
      return ExecutePlanRow(plan, source, options, final_env);
    case ExecutionEngine::kVectorized:
      return ExecutePlanVectorized(plan, source, options, final_env);
  }
  return InternalError("unreachable execution engine");
}

Result<ExecutionResult> ExecutePlan(const Plan& plan, SimulatedSource& source,
                                    TableEnv* final_env) {
  return ExecutePlan(plan, static_cast<AccessSource&>(source),
                     ExecutionOptions{}, final_env);
}

}  // namespace lcp
