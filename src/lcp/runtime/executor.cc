#include "lcp/runtime/executor.h"

#include <algorithm>
#include <random>

#include "lcp/base/strings.h"

namespace lcp {

namespace {

/// Retry-layer state threaded through one ExecutePlan call: the policy, the
/// clock, the jitter PRNG, per-method circuit breakers, and the absolute
/// plan deadline. Deadlines are only consulted inside access loops — that is
/// where execution time goes (source latency and backoff waits); in-memory
/// middleware commands run to completion.
struct RetryState {
  RetryState(const ExecutionOptions& options, const Schema& schema,
             ExecutionResult& result)
      : policy(options.retry),
        clock(options.clock != nullptr ? options.clock
                                       : SystemClock::Instance()),
        cancel(options.cancel),
        jitter_prng(options.retry.jitter_seed),
        result(&result) {
    if (policy.breaker_threshold > 0) {
      consecutive_failures.assign(schema.num_access_methods(), 0);
      breaker_open.assign(schema.num_access_methods(), 0);
    }
    if (policy.plan_deadline_micros >= 0) {
      plan_deadline_abs = clock->NowMicros() + policy.plan_deadline_micros;
    }
  }

  const RetryPolicy& policy;
  Clock* clock;
  const CancelToken* cancel;
  std::mt19937_64 jitter_prng;
  ExecutionResult* result;
  std::vector<int> consecutive_failures;
  std::vector<char> breaker_open;
  int64_t plan_deadline_abs = -1;
};

/// One logical access (one binding) with bounded-exponential-backoff retry,
/// circuit breaking, and deadline enforcement.
Result<AccessOutcome> AccessWithRetry(AccessSource& source,
                                      AccessMethodId method,
                                      const Tuple& binding, RetryState& rs) {
  const RetryPolicy& p = rs.policy;
  RetryStats& stats = rs.result->retry;

  if (p.breaker_threshold > 0 && rs.breaker_open[method]) {
    ++stats.breaker_short_circuits;
    return UnavailableError(StrCat("circuit breaker open for method ",
                                   source.schema().access_method(method).name));
  }

  int64_t access_deadline_abs = -1;
  if (p.access_deadline_micros >= 0) {
    access_deadline_abs = rs.clock->NowMicros() + p.access_deadline_micros;
  }

  Status last_failure;
  for (int attempt = 1;; ++attempt) {
    if (rs.cancel != nullptr && rs.cancel->cancelled()) {
      return Status(rs.cancel->code(),
                    StrCat("execution cancelled before attempt ", attempt,
                           " of access to ",
                           source.schema().access_method(method).name));
    }
    if (rs.plan_deadline_abs >= 0 || access_deadline_abs >= 0) {
      const int64_t now = rs.clock->NowMicros();
      if ((rs.plan_deadline_abs >= 0 && now >= rs.plan_deadline_abs) ||
          (access_deadline_abs >= 0 && now >= access_deadline_abs)) {
        ++stats.deadline_abandons;
        return DeadlineExceededError(
            StrCat("deadline expired before attempt ", attempt,
                   " of access to ",
                   source.schema().access_method(method).name));
      }
    }

    ++stats.attempts;
    Result<AccessOutcome> outcome = source.TryAccess(method, binding);
    if (outcome.ok()) {
      if (p.breaker_threshold > 0) rs.consecutive_failures[method] = 0;
      return outcome;
    }
    if (outcome.status().code() != StatusCode::kUnavailable) {
      // Permanent error (bad arity, internal failure): never retried.
      return outcome.status();
    }
    ++stats.failures;
    last_failure = outcome.status();

    if (p.breaker_threshold > 0 &&
        ++rs.consecutive_failures[method] >= p.breaker_threshold) {
      rs.breaker_open[method] = 1;
      ++stats.breaker_trips;
      return UnavailableError(
          StrCat("circuit breaker tripped for method ",
                 source.schema().access_method(method).name, " after ",
                 rs.consecutive_failures[method],
                 " consecutive failures; last: ", last_failure.message()));
    }
    if (attempt >= p.max_attempts) return last_failure;

    // Bounded exponential backoff with deterministic jitter.
    int64_t backoff = p.initial_backoff_micros;
    for (int i = 1; i < attempt && backoff < p.max_backoff_micros; ++i) {
      backoff = static_cast<int64_t>(static_cast<double>(backoff) *
                                     p.backoff_multiplier);
    }
    backoff = std::min(backoff, p.max_backoff_micros);
    if (p.jitter_fraction > 0) {
      const double unit =
          static_cast<double>(rs.jitter_prng() >> 11) * 0x1.0p-53;
      backoff = static_cast<int64_t>(static_cast<double>(backoff) *
                                     (1.0 - p.jitter_fraction * unit));
    }
    if (backoff > 0) {
      rs.clock->SleepMicros(backoff);
      stats.backoff_micros += backoff;
    }
    stats.backoff_schedule.push_back(backoff);
    ++stats.retries;
  }
}

/// Records an access binding that could not be answered (exhausted retries,
/// open breaker, or deadline). In best-effort mode the binding's rows are
/// simply missing from the output and execution continues.
bool DegradeOrFail(const Status& failure, RetryState& rs) {
  const StatusCode code = failure.code();
  // A tripped cancel token always aborts: degrading would keep walking the
  // remaining bindings of a request nobody is waiting for.
  if (rs.cancel != nullptr && rs.cancel->cancelled()) return false;
  if (!rs.policy.best_effort || (code != StatusCode::kUnavailable &&
                                 code != StatusCode::kDeadlineExceeded)) {
    return false;
  }
  rs.result->complete = false;
  ++rs.result->degraded_accesses;
  return true;
}

/// Runs one access command; appends retrieved rows to env[output_table].
Status RunAccess(const AccessCommand& access, const Schema& schema,
                 AccessSource& source, TableEnv& env, RetryState& rs) {
  const AccessMethod& method = schema.access_method(access.method);
  const int num_inputs = static_cast<int>(method.input_positions.size());

  // Resolve where each input position gets its value: a column of the input
  // expression or a constant.
  std::vector<int> column_of(num_inputs, -1);
  std::vector<Value> constant_of(num_inputs);
  std::vector<bool> is_constant(num_inputs, false);

  Table input_table;
  if (access.input != nullptr) {
    LCP_ASSIGN_OR_RETURN(input_table, EvaluateRa(*access.input, env));
  }
  for (const auto& [attr, pos] : access.input_binding) {
    auto it = std::find(method.input_positions.begin(),
                        method.input_positions.end(), pos);
    if (it == method.input_positions.end()) {
      return InvalidArgumentError(StrCat("plan binds position ", pos,
                                         " which is not an input of ",
                                         method.name));
    }
    int slot = static_cast<int>(it - method.input_positions.begin());
    column_of[slot] = input_table.AttrIndex(attr);
    if (column_of[slot] < 0) {
      return InvalidArgumentError(
          StrCat("input attribute ", attr, " missing for ", method.name));
    }
  }
  for (const auto& [pos, value] : access.constant_inputs) {
    auto it = std::find(method.input_positions.begin(),
                        method.input_positions.end(), pos);
    if (it == method.input_positions.end()) {
      return InvalidArgumentError(StrCat("plan binds constant to position ",
                                         pos, " which is not an input of ",
                                         method.name));
    }
    int slot = static_cast<int>(it - method.input_positions.begin());
    is_constant[slot] = true;
    constant_of[slot] = value;
  }
  for (int slot = 0; slot < num_inputs; ++slot) {
    if (!is_constant[slot] && column_of[slot] < 0) {
      return InvalidArgumentError(
          StrCat("input position ", method.input_positions[slot], " of ",
                 method.name, " is unbound"));
    }
  }

  // Distinct input bindings.
  std::unordered_set<Tuple, TupleHash> bindings;
  if (access.input != nullptr) {
    for (const Tuple& row : input_table.rows()) {
      Tuple binding(num_inputs);
      for (int slot = 0; slot < num_inputs; ++slot) {
        binding[slot] =
            is_constant[slot] ? constant_of[slot] : row[column_of[slot]];
      }
      bindings.insert(std::move(binding));
    }
  } else {
    Tuple binding(num_inputs);
    for (int slot = 0; slot < num_inputs; ++slot) {
      if (!is_constant[slot]) {
        return InvalidArgumentError(
            StrCat("access to ", method.name,
                   " has no input expression but unbound inputs"));
      }
      binding[slot] = constant_of[slot];
    }
    bindings.insert(std::move(binding));
  }

  // Output table schema.
  std::vector<std::string> out_attrs;
  out_attrs.reserve(access.output_columns.size());
  for (const auto& [attr, pos] : access.output_columns) {
    out_attrs.push_back(attr);
  }
  Table& out = env.emplace(access.output_table, Table(out_attrs)).first->second;

  for (const Tuple& binding : bindings) {
    Result<AccessOutcome> outcome =
        AccessWithRetry(source, access.method, binding, rs);
    if (!outcome.ok()) {
      if (DegradeOrFail(outcome.status(), rs)) continue;
      return outcome.status();
    }
    ++rs.result->source_calls;
    if (outcome->truncated) {
      rs.result->complete = false;
      ++rs.result->degraded_accesses;
    }
    for (const Tuple& tuple : *outcome->tuples) {
      bool keep = true;
      for (const auto& [a, b] : access.position_equalities) {
        if (tuple[a] != tuple[b]) {
          keep = false;
          break;
        }
      }
      if (keep) {
        for (const auto& [pos, value] : access.position_constants) {
          if (tuple[pos] != value) {
            keep = false;
            break;
          }
        }
      }
      if (!keep) continue;
      Tuple row;
      row.reserve(access.output_columns.size());
      for (const auto& [attr, pos] : access.output_columns) {
        row.push_back(tuple[pos]);
      }
      out.Insert(std::move(row));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<ExecutionResult> ExecutePlan(const Plan& plan, AccessSource& source,
                                    const ExecutionOptions& options,
                                    TableEnv* final_env) {
  ExecutionResult result;
  RetryState rs(options, source.schema(), result);
  TableEnv env;
  for (const Command& cmd : plan.commands) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      return Status(options.cancel->code(),
                    "plan execution cancelled between commands");
    }
    if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
      ++result.access_commands;
      LCP_RETURN_IF_ERROR(
          RunAccess(*access, source.schema(), source, env, rs));
    } else {
      const QueryCommand& query = std::get<QueryCommand>(cmd);
      LCP_ASSIGN_OR_RETURN(Table table, EvaluateRa(*query.expr, env));
      env[query.output_table] = std::move(table);
    }
  }
  auto it = env.find(plan.output_table);
  if (it == env.end()) {
    return InvalidArgumentError(
        StrCat("plan output table ", plan.output_table, " never produced"));
  }
  if (!plan.output_attrs.empty()) {
    LCP_ASSIGN_OR_RETURN(
        result.output,
        EvaluateRa(*RaExpr::Project(RaExpr::TempScan(plan.output_table),
                                    plan.output_attrs),
                   env));
  } else {
    // Boolean plan: output is the nullary projection (empty vs. non-empty).
    Table boolean{std::vector<std::string>{}};
    if (!it->second.empty()) boolean.Insert(Tuple{});
    result.output = std::move(boolean);
  }
  if (final_env != nullptr) *final_env = std::move(env);
  return result;
}

Result<ExecutionResult> ExecutePlan(const Plan& plan, SimulatedSource& source,
                                    TableEnv* final_env) {
  return ExecutePlan(plan, static_cast<AccessSource&>(source),
                     ExecutionOptions{}, final_env);
}

}  // namespace lcp
