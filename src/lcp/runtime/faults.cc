#include "lcp/runtime/faults.h"

#include "lcp/base/check.h"
#include "lcp/base/strings.h"

namespace lcp {

FaultInjectingSource::FaultInjectingSource(SimulatedSource* base,
                                          FaultProfile profile, uint64_t seed,
                                          Clock* clock)
    : base_(base),
      profile_(std::move(profile)),
      prng_(seed),
      clock_(clock != nullptr ? clock : SystemClock::Instance()) {
  LCP_CHECK(base != nullptr);
}

Result<AccessOutcome> FaultInjectingSource::TryAccess(AccessMethodId method,
                                                      const Tuple& inputs) {
  ++stats_.attempts;
  const MethodFaults& faults = profile_.ForMethod(method);

  // Latency is charged even to failing attempts: a flaky service still makes
  // the caller wait before the error comes back.
  int64_t latency = faults.latency_base_micros;
  if (faults.latency_jitter_micros > 0) {
    latency += static_cast<int64_t>(
        prng_() % static_cast<uint64_t>(faults.latency_jitter_micros + 1));
  }
  if (latency > 0) {
    clock_->SleepMicros(latency);
    stats_.simulated_latency_micros += latency;
  }

  // The clock is read only when a schedule exists: the unscheduled path
  // keeps its historic draw-and-sleep sequence byte-identical (an extra
  // NowMicros would advance auto-advancing virtual clocks).
  const bool scheduled = !fail_from_.empty() || !recover_at_.empty();
  const int64_t now = scheduled ? clock_->NowMicros() : 0;
  const bool outage = scheduled ? OutageActive(method, now)
                                : profile_.permanent_outages.count(method) > 0;
  if (outage) {
    ++stats_.outage_rejections;
    return UnavailableError(
        StrCat("method ", base_->schema().access_method(method).name,
               " is in outage"));
  }
  if (faults.transient_failure_rate > 0 &&
      NextUnit() < faults.transient_failure_rate) {
    ++stats_.injected_failures;
    return UnavailableError(
        StrCat("injected transient failure on method ",
               base_->schema().access_method(method).name));
  }

  const std::vector<Tuple>& rows = base_->Access(method, inputs);
  if (faults.truncation_rate > 0 && NextUnit() < faults.truncation_rate &&
      !rows.empty()) {
    size_t keep = static_cast<size_t>(static_cast<double>(rows.size()) *
                                      faults.truncation_keep_fraction);
    if (keep >= rows.size()) keep = rows.size() - 1;
    truncated_scratch_.assign(rows.begin(), rows.begin() + keep);
    ++stats_.truncations;
    return AccessOutcome{&truncated_scratch_, true};
  }
  return AccessOutcome{&rows, false};
}

void FaultInjectingSource::FailFrom(AccessMethodId method, int64_t at_micros) {
  fail_from_[method] = at_micros;
}

void FaultInjectingSource::RecoverAt(AccessMethodId method,
                                     int64_t at_micros) {
  recover_at_[method] = at_micros;
}

bool FaultInjectingSource::OutageActive(AccessMethodId method,
                                        int64_t now) const {
  auto recover = recover_at_.find(method);
  if (recover != recover_at_.end() && now >= recover->second) return false;
  if (profile_.permanent_outages.count(method) > 0) return true;
  auto fail = fail_from_.find(method);
  return fail != fail_from_.end() && now >= fail->second;
}

void FaultInjectingSource::TryAccessBatch(
    AccessMethodId method, const std::vector<Tuple>& bindings,
    std::vector<BatchEntryOutcome>& outcomes) {
  outcomes.reserve(outcomes.size() + bindings.size());
  for (const Tuple& binding : bindings) {
    BatchEntryOutcome entry;
    Result<AccessOutcome> outcome = TryAccess(method, binding);
    if (!outcome.ok()) {
      entry.status = outcome.status();
    } else if (outcome->truncated) {
      // The truncation scratch is reused by the next access — own the copy.
      entry.owned_rows = *outcome->tuples;
      entry.truncated = true;
    } else {
      // Untruncated rows live in the base source's per-method index, which
      // is stable for the source's lifetime.
      entry.rows = outcome->tuples;
    }
    outcomes.push_back(std::move(entry));
  }
}

}  // namespace lcp
