#include "lcp/runtime/source.h"

#include "lcp/base/check.h"

namespace lcp {

SimulatedSource::SimulatedSource(const Schema* schema,
                                 const Instance* instance)
    : schema_(schema), instance_(instance) {
  LCP_CHECK(schema != nullptr && instance != nullptr);
  indexes_.resize(schema->num_access_methods());
}

void SimulatedSource::BuildIndex(AccessMethodId method) {
  MethodIndex& index = indexes_[method];
  if (index.built) return;
  const AccessMethod& mt = schema_->access_method(method);
  for (const Tuple& tuple : instance_->relation(mt.relation).tuples()) {
    Tuple key;
    key.reserve(mt.input_positions.size());
    for (int pos : mt.input_positions) key.push_back(tuple[pos]);
    index.by_key[std::move(key)].push_back(tuple);
  }
  index.built = true;
}

const std::vector<Tuple>& SimulatedSource::Access(AccessMethodId method,
                                                  const Tuple& inputs) {
  const AccessMethod& mt = schema_->access_method(method);
  LCP_CHECK_EQ(inputs.size(), mt.input_positions.size())
      << "access to " << mt.name << " with wrong number of inputs";
  BuildIndex(method);
  ++total_calls_;
  charged_cost_ += mt.cost;
  distinct_pairs_.insert(AccessPair{method, inputs});
  auto it = indexes_[method].by_key.find(inputs);
  if (it == indexes_[method].by_key.end()) return empty_result_;
  return it->second;
}

void AccessSource::TryAccessBatch(AccessMethodId method,
                                  const std::vector<Tuple>& bindings,
                                  std::vector<BatchEntryOutcome>& outcomes) {
  outcomes.reserve(outcomes.size() + bindings.size());
  for (const Tuple& binding : bindings) {
    BatchEntryOutcome entry;
    Result<AccessOutcome> outcome = TryAccess(method, binding);
    if (outcome.ok()) {
      // Copy: the next loop iteration may invalidate the pointer.
      entry.owned_rows = *outcome->tuples;
      entry.truncated = outcome->truncated;
    } else {
      entry.status = outcome.status();
    }
    outcomes.push_back(std::move(entry));
  }
}

void SimulatedSource::TryAccessBatch(AccessMethodId method,
                                     const std::vector<Tuple>& bindings,
                                     std::vector<BatchEntryOutcome>& outcomes) {
  outcomes.reserve(outcomes.size() + bindings.size());
  for (const Tuple& binding : bindings) {
    BatchEntryOutcome entry;
    entry.rows = &Access(method, binding);
    outcomes.push_back(std::move(entry));
  }
}

void SimulatedSource::ResetAccounting() {
  total_calls_ = 0;
  charged_cost_ = 0;
  distinct_pairs_.clear();
}

}  // namespace lcp
