#include "lcp/runtime/health.h"

#include <algorithm>
#include <utility>

#include "lcp/base/check.h"

namespace lcp {

const char* MethodHealthName(MethodHealth health) {
  switch (health) {
    case MethodHealth::kHealthy:
      return "healthy";
    case MethodHealth::kDegraded:
      return "degraded";
    case MethodHealth::kQuarantined:
      return "quarantined";
    case MethodHealth::kProbing:
      return "probing";
  }
  return "unknown";
}

SourceHealthRegistry::SourceHealthRegistry(const Schema* schema,
                                           HealthOptions options)
    : schema_(schema),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SystemClock::Instance()),
      states_(static_cast<size_t>(schema->num_access_methods())),
      quarantined_(static_cast<size_t>(schema->num_access_methods())) {
  LCP_CHECK(schema != nullptr);
  for (auto& flag : quarantined_) flag.store(0, std::memory_order_relaxed);
  if (options_.ewma_alpha <= 0 || options_.ewma_alpha > 1) {
    options_.ewma_alpha = 0.3;
  }
  if (options_.quarantine_after_consecutive < 1) {
    options_.quarantine_after_consecutive = 1;
  }
  if (options_.quarantine_micros < 1) options_.quarantine_micros = 1;
  if (options_.max_quarantine_micros < options_.quarantine_micros) {
    options_.max_quarantine_micros = options_.quarantine_micros;
  }
  if (options_.quarantine_backoff < 1.0) options_.quarantine_backoff = 1.0;
}

void SourceHealthRegistry::BumpEpoch() {
  availability_epoch_.fetch_add(1, std::memory_order_acq_rel);
  epoch_bumps_.fetch_add(1, std::memory_order_relaxed);
}

void SourceHealthRegistry::Quarantine(size_t index, MethodState& s,
                                      bool backoff) {
  if (backoff) {
    s.window_micros = std::min(
        static_cast<int64_t>(static_cast<double>(s.window_micros) *
                             options_.quarantine_backoff),
        options_.max_quarantine_micros);
  } else {
    s.window_micros = options_.quarantine_micros;
  }
  s.quarantined_until = clock_->NowMicros() + s.window_micros;
  const bool was_excluded = s.state == MethodHealth::kQuarantined ||
                            s.state == MethodHealth::kProbing;
  s.state = MethodHealth::kQuarantined;
  quarantined_[index].store(1, std::memory_order_release);
  quarantines_.fetch_add(1, std::memory_order_relaxed);
  // A probe failure keeps the method excluded (probing methods stay out of
  // plans); only a fresh healthy/degraded -> quarantined transition changes
  // the mask.
  if (!was_excluded) BumpEpoch();
}

void SourceHealthRegistry::RecordSuccess(AccessMethodId method) {
  const size_t index = static_cast<size_t>(method);
  LCP_CHECK(index < states_.size());
  std::lock_guard<std::mutex> lock(mutex_);
  MethodState& s = states_[index];
  ++s.successes;
  s.consecutive_failures = 0;
  s.ewma *= 1.0 - options_.ewma_alpha;
  switch (s.state) {
    case MethodHealth::kProbing:
      // Probe answered: the source is back. Reset the failure memory so the
      // next wobble starts from a clean slate, re-admit the method, and
      // advance the epoch so stale detour plans fall out of the cache.
      s.state = MethodHealth::kHealthy;
      s.ewma = 0.0;
      s.window_micros = 0;
      quarantined_[index].store(0, std::memory_order_release);
      recoveries_.fetch_add(1, std::memory_order_relaxed);
      BumpEpoch();
      break;
    case MethodHealth::kDegraded:
      if (s.ewma < options_.degraded_threshold) {
        s.state = MethodHealth::kHealthy;
      }
      break;
    case MethodHealth::kQuarantined:
      // A straggler success from a request planned before the quarantine —
      // informative but not a probe; the timer decides re-admission.
      break;
    case MethodHealth::kHealthy:
      break;
  }
}

void SourceHealthRegistry::RecordFailure(AccessMethodId method,
                                         const Tuple& binding) {
  const size_t index = static_cast<size_t>(method);
  LCP_CHECK(index < states_.size());
  std::lock_guard<std::mutex> lock(mutex_);
  MethodState& s = states_[index];
  ++s.failures;
  ++s.consecutive_failures;
  s.ewma = s.ewma * (1.0 - options_.ewma_alpha) + options_.ewma_alpha;
  s.probe_binding = binding;
  switch (s.state) {
    case MethodHealth::kProbing:
      // The recovery probe itself failed: back off and wait longer.
      probes_failed_.fetch_add(1, std::memory_order_relaxed);
      Quarantine(index, s, /*backoff=*/true);
      break;
    case MethodHealth::kHealthy:
    case MethodHealth::kDegraded:
      if (s.consecutive_failures >= options_.quarantine_after_consecutive) {
        Quarantine(index, s, /*backoff=*/false);
      } else if (s.ewma >= options_.degraded_threshold) {
        s.state = MethodHealth::kDegraded;
      }
      break;
    case MethodHealth::kQuarantined:
      // Straggler failure from a pre-quarantine plan; already excluded.
      break;
  }
}

std::vector<SourceHealthRegistry::Probe>
SourceHealthRegistry::TakeDueProbes() {
  std::vector<Probe> due;
  const int64_t now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < states_.size(); ++i) {
    MethodState& s = states_[i];
    if (s.state != MethodHealth::kQuarantined) continue;
    if (now < s.quarantined_until) continue;
    s.state = MethodHealth::kProbing;
    ++s.probes_sent;
    probes_sent_.fetch_add(1, std::memory_order_relaxed);
    due.push_back(Probe{static_cast<AccessMethodId>(i), s.probe_binding});
  }
  return due;
}

std::vector<AccessMethodId> SourceHealthRegistry::ExcludedMethods() const {
  std::vector<AccessMethodId> excluded;
  for (size_t i = 0; i < quarantined_.size(); ++i) {
    if (quarantined_[i].load(std::memory_order_acquire) != 0) {
      excluded.push_back(static_cast<AccessMethodId>(i));
    }
  }
  return excluded;
}

size_t SourceHealthRegistry::NumQuarantined() const {
  size_t count = 0;
  for (const auto& flag : quarantined_) {
    if (flag.load(std::memory_order_acquire) != 0) ++count;
  }
  return count;
}

MethodHealthSnapshot SourceHealthRegistry::Snapshot(
    AccessMethodId method) const {
  const size_t index = static_cast<size_t>(method);
  LCP_CHECK(index < states_.size());
  std::lock_guard<std::mutex> lock(mutex_);
  const MethodState& s = states_[index];
  MethodHealthSnapshot snapshot;
  snapshot.state = s.state;
  snapshot.ewma_failure_rate = s.ewma;
  snapshot.consecutive_failures = s.consecutive_failures;
  snapshot.quarantined_until = s.quarantined_until;
  snapshot.successes = s.successes;
  snapshot.failures = s.failures;
  snapshot.probes_sent = s.probes_sent;
  return snapshot;
}

HealthStats SourceHealthRegistry::stats() const {
  HealthStats stats;
  stats.quarantines = quarantines_.load(std::memory_order_relaxed);
  stats.probes_sent = probes_sent_.load(std::memory_order_relaxed);
  stats.probes_failed = probes_failed_.load(std::memory_order_relaxed);
  stats.recoveries = recoveries_.load(std::memory_order_relaxed);
  stats.epoch_bumps = epoch_bumps_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace lcp
