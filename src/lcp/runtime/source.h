#ifndef LCP_RUNTIME_SOURCE_H_
#define LCP_RUNTIME_SOURCE_H_

#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "lcp/data/instance.h"
#include "lcp/logic/ids.h"
#include "lcp/schema/schema.h"

namespace lcp {

/// One concrete source invocation: a method plus the values bound to its
/// input positions (in input-position order). Theorem 8 compares plans by
/// the *set* of such pairs they trigger.
struct AccessPair {
  AccessMethodId method = kInvalidAccessMethod;
  Tuple inputs;

  friend bool operator==(const AccessPair& a, const AccessPair& b) {
    return a.method == b.method && a.inputs == b.inputs;
  }
};

struct AccessPairHash {
  size_t operator()(const AccessPair& p) const {
    return TupleHash()(p.inputs) ^
           (static_cast<size_t>(p.method) * 0x9e3779b97f4a7c15ULL);
  }
};

using AccessPairSet = std::unordered_set<AccessPair, AccessPairHash>;

/// Simulates a collection of restricted-interface data sources (web forms /
/// services) over an in-memory instance: tuples of a relation can be
/// retrieved *only* through an access method with all its input positions
/// bound. Every invocation is metered.
///
/// This is the substitution for the paper's remote sources (see DESIGN.md):
/// it preserves exactly the behaviour the paper's cost model observes —
/// which (method, input) pairs are invoked and how often.
class SimulatedSource {
 public:
  SimulatedSource(const Schema* schema, const Instance* instance);

  /// Performs one access: all tuples of the method's relation whose input
  /// positions equal `inputs` (given in input-position order). Meters the
  /// call.
  const std::vector<Tuple>& Access(AccessMethodId method, const Tuple& inputs);

  const Schema& schema() const { return *schema_; }
  const Instance& instance() const { return *instance_; }

  // --- accounting ---------------------------------------------------------
  size_t total_calls() const { return total_calls_; }
  const AccessPairSet& distinct_pairs() const { return distinct_pairs_; }
  /// Sum over calls of the invoked method's cost (a per-tuple-call metric;
  /// the static simple cost function charges per command instead).
  double charged_cost() const { return charged_cost_; }
  void ResetAccounting();

 private:
  struct MethodIndex {
    bool built = false;
    std::unordered_map<Tuple, std::vector<Tuple>, TupleHash> by_key;
  };

  void BuildIndex(AccessMethodId method);

  const Schema* schema_;
  const Instance* instance_;
  std::vector<MethodIndex> indexes_;

  size_t total_calls_ = 0;
  double charged_cost_ = 0;
  AccessPairSet distinct_pairs_;
  std::vector<Tuple> empty_result_;
};

}  // namespace lcp

#endif  // LCP_RUNTIME_SOURCE_H_
