#ifndef LCP_RUNTIME_SOURCE_H_
#define LCP_RUNTIME_SOURCE_H_

#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "lcp/base/result.h"
#include "lcp/data/instance.h"
#include "lcp/logic/ids.h"
#include "lcp/schema/schema.h"

namespace lcp {

/// One concrete source invocation: a method plus the values bound to its
/// input positions (in input-position order). Theorem 8 compares plans by
/// the *set* of such pairs they trigger.
struct AccessPair {
  AccessMethodId method = kInvalidAccessMethod;
  Tuple inputs;

  friend bool operator==(const AccessPair& a, const AccessPair& b) {
    return a.method == b.method && a.inputs == b.inputs;
  }
};

struct AccessPairHash {
  size_t operator()(const AccessPair& p) const {
    // Proper hash-combine: a plain XOR with `method * constant` collapses
    // buckets whenever many pairs share a method (the common case — one
    // method probed with many bindings), because the method contribution is
    // then a fixed XOR mask that permutes buckets instead of spreading them.
    size_t h = static_cast<size_t>(p.method) + 0x9e3779b97f4a7c15ULL;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    size_t t = TupleHash()(p.inputs);
    return h ^ (t + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  }
};

using AccessPairSet = std::unordered_set<AccessPair, AccessPairHash>;

/// Result of one successful (possibly degraded) source access.
struct AccessOutcome {
  /// The retrieved rows. Points into source-owned storage; valid until the
  /// next access on the same source object.
  const std::vector<Tuple>* tuples = nullptr;
  /// True when the source returned only a prefix of the full answer (the
  /// partial-result fault mode). Callers that see a truncated outcome must
  /// mark their result incomplete.
  bool truncated = false;
};

/// Per-binding outcome of one batched access (TryAccessBatch). Unlike
/// AccessOutcome, row storage referenced from a batch entry must stay valid
/// until the *next batch* starts, surviving interleaved single TryAccess
/// calls (the executor retries failed bindings while later entries are
/// still pending). Sources whose storage cannot promise that copy into
/// `owned_rows` instead (the default implementation always does).
struct BatchEntryOutcome {
  /// Ok, or the per-binding failure (kUnavailable = retryable).
  Status status;
  /// The retrieved rows when `status` is OK: either a pointer into
  /// batch-stable source storage, or null with the rows in `owned_rows`.
  const std::vector<Tuple>* rows = nullptr;
  std::vector<Tuple> owned_rows;
  bool truncated = false;

  const std::vector<Tuple>& Rows() const {
    return rows != nullptr ? *rows : owned_rows;
  }
};

/// A restricted-interface data source that can fail. This is the failure
/// vocabulary every backend shares (see DESIGN.md, "Failure semantics and
/// budgets"): an access either yields an AccessOutcome or a Status —
/// kUnavailable for transient faults and outages (retryable), anything else
/// for permanent errors (not retryable).
class AccessSource {
 public:
  virtual ~AccessSource() = default;

  /// Performs one access of `method` with `inputs` bound to its input
  /// positions (in input-position order).
  virtual Result<AccessOutcome> TryAccess(AccessMethodId method,
                                          const Tuple& inputs) = 0;

  /// Performs one access per binding in `bindings` (one restricted-
  /// interface call per *batch* — the realistic web-form model: input sets
  /// in, answer sets out). Appends one BatchEntryOutcome per binding, in
  /// binding order. Per-binding failures are reported in the entry status,
  /// never as an exceptional whole-batch failure, so fault injection and
  /// retry accounting stay per binding.
  ///
  /// The default implementation loops over TryAccess and copies each
  /// answer, so every existing source (fault wrappers included) works
  /// unchanged; sources with batch-stable storage override it to skip the
  /// copies.
  virtual void TryAccessBatch(AccessMethodId method,
                              const std::vector<Tuple>& bindings,
                              std::vector<BatchEntryOutcome>& outcomes);

  virtual const Schema& schema() const = 0;
};

/// Simulates a collection of restricted-interface data sources (web forms /
/// services) over an in-memory instance: tuples of a relation can be
/// retrieved *only* through an access method with all its input positions
/// bound. Every invocation is metered.
///
/// This is the substitution for the paper's remote sources (see DESIGN.md):
/// it preserves exactly the behaviour the paper's cost model observes —
/// which (method, input) pairs are invoked and how often.
class SimulatedSource : public AccessSource {
 public:
  SimulatedSource(const Schema* schema, const Instance* instance);

  /// Performs one access: all tuples of the method's relation whose input
  /// positions equal `inputs` (given in input-position order). Meters the
  /// call.
  const std::vector<Tuple>& Access(AccessMethodId method, const Tuple& inputs);

  /// AccessSource: an in-memory source never fails, so this is Access()
  /// wrapped in an always-complete outcome.
  Result<AccessOutcome> TryAccess(AccessMethodId method,
                                  const Tuple& inputs) override {
    return AccessOutcome{&Access(method, inputs), false};
  }

  /// Batched access without row copies: answers point straight into the
  /// per-method index, which is stable for the lifetime of the source.
  void TryAccessBatch(AccessMethodId method, const std::vector<Tuple>& bindings,
                      std::vector<BatchEntryOutcome>& outcomes) override;

  const Schema& schema() const override { return *schema_; }
  const Instance& instance() const { return *instance_; }

  // --- accounting ---------------------------------------------------------
  size_t total_calls() const { return total_calls_; }
  const AccessPairSet& distinct_pairs() const { return distinct_pairs_; }
  /// Sum over calls of the invoked method's cost (a per-tuple-call metric;
  /// the static simple cost function charges per command instead).
  double charged_cost() const { return charged_cost_; }
  void ResetAccounting();

 private:
  struct MethodIndex {
    bool built = false;
    std::unordered_map<Tuple, std::vector<Tuple>, TupleHash> by_key;
  };

  void BuildIndex(AccessMethodId method);

  const Schema* schema_;
  const Instance* instance_;
  std::vector<MethodIndex> indexes_;

  size_t total_calls_ = 0;
  double charged_cost_ = 0;
  AccessPairSet distinct_pairs_;
  std::vector<Tuple> empty_result_;
};

}  // namespace lcp

#endif  // LCP_RUNTIME_SOURCE_H_
