#ifndef LCP_RUNTIME_EXECUTOR_H_
#define LCP_RUNTIME_EXECUTOR_H_

#include "lcp/base/result.h"
#include "lcp/plan/plan.h"
#include "lcp/ra/eval.h"
#include "lcp/runtime/source.h"

namespace lcp {

/// Outcome of running a plan against a source.
struct ExecutionResult {
  /// The content of T_fin projected to the plan's output attributes; its
  /// columns align position-wise with the query's free variables.
  Table output;
  int access_commands = 0;
  /// Per-tuple source invocations made while executing (see
  /// SimulatedSource accounting for distinct pairs / charged cost).
  size_t source_calls = 0;
};

/// Executes `plan` against `source` (§2 semantics): commands run in
/// sequence, temporary tables start empty, each access command feeds every
/// distinct input tuple of its input expression into the method. If
/// `final_env` is non-null it receives the temporary-table environment
/// (useful in tests).
Result<ExecutionResult> ExecutePlan(const Plan& plan, SimulatedSource& source,
                                    TableEnv* final_env = nullptr);

}  // namespace lcp

#endif  // LCP_RUNTIME_EXECUTOR_H_
