#ifndef LCP_RUNTIME_EXECUTOR_H_
#define LCP_RUNTIME_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "lcp/base/budget.h"
#include "lcp/base/clock.h"
#include "lcp/base/result.h"
#include "lcp/plan/plan.h"
#include "lcp/ra/eval.h"
#include "lcp/ra/vector_eval.h"
#include "lcp/runtime/health.h"
#include "lcp/runtime/source.h"

namespace lcp {

/// How ExecutePlan handles source failures. All waiting goes through the
/// configured Clock, so a VirtualClock makes retry schedules both instant
/// and deterministic; jitter comes from a PRNG seeded with `jitter_seed`,
/// never from wall time.
struct RetryPolicy {
  /// Total tries per source access (1 = no retries). Only kUnavailable
  /// failures are retried; any other error is permanent and propagates.
  int max_attempts = 3;
  /// Exponential backoff before retry k (1-based): initial * multiplier^(k-1),
  /// clamped to max, then scaled by the deterministic jitter factor.
  int64_t initial_backoff_micros = 1000;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_micros = 64000;
  /// Each backoff is multiplied by a factor drawn uniformly from
  /// [1 - jitter_fraction, 1] using a PRNG seeded with jitter_seed.
  double jitter_fraction = 0.0;
  uint64_t jitter_seed = 0;
  /// Deadline for one logical access (all retries of one binding), and for
  /// the whole plan. -1 = unlimited. Expiry surfaces kDeadlineExceeded (or a
  /// degraded result in best-effort mode).
  int64_t access_deadline_micros = -1;
  int64_t plan_deadline_micros = -1;
  /// Circuit breaker: after this many *consecutive* failed attempts on one
  /// method, the breaker for that method opens and further accesses to it
  /// short-circuit with kUnavailable without touching the source. 0 = off.
  int breaker_threshold = 0;
  /// Best-effort mode: an access binding that still fails after retries (or
  /// hits an open breaker / a deadline) is recorded as degraded and skipped,
  /// and execution continues; the result is marked incomplete. When false,
  /// the first such failure aborts the plan with its status.
  bool best_effort = false;
};

/// Retry-layer accounting for one ExecutePlan call.
struct RetryStats {
  size_t attempts = 0;            ///< Source attempts, including retries.
  size_t failures = 0;            ///< Attempts that returned kUnavailable.
  size_t retries = 0;             ///< Re-attempts after a transient failure.
  size_t breaker_trips = 0;       ///< Breakers that opened.
  size_t breaker_short_circuits = 0;  ///< Accesses rejected by open breakers.
  size_t deadline_abandons = 0;   ///< Accesses abandoned on a deadline.
  int64_t backoff_micros = 0;     ///< Total time spent backing off.
  /// Every backoff wait issued, in order. With a fixed policy, seed, and
  /// fault schedule this sequence is byte-identical across runs (the
  /// determinism contract; see DESIGN.md).
  std::vector<int64_t> backoff_schedule;
};

/// Which execution engine evaluates the plan's RA expressions and drives
/// access dispatch. Both engines implement identical semantics — same
/// result rows in the same canonical order, same statuses, same source
/// access sequence — which the seeded differential suite enforces
/// (tests/exec_vectorized_test.cc).
enum class ExecutionEngine {
  /// Tuple-at-a-time evaluation over attribute-named row Tables. Kept as
  /// the differential oracle for the vectorized engine.
  kRowOracle,
  /// Columnar batch evaluation: dictionary-encoded ColumnBatches, selection
  /// -vector filters, build/probe hash joins, batch dedup (DESIGN.md §9).
  kVectorized,
};

/// Execution-time knobs. Default-constructed options reproduce the historic
/// direct path: no deadlines, no breaker, and retries that never trigger on
/// an infallible source.
struct ExecutionOptions {
  RetryPolicy retry;
  /// Clock for deadlines and backoff waits; null = process SystemClock.
  Clock* clock = nullptr;
  /// Cooperative cancellation: polled before every source attempt (row
  /// engine) or batch-entry consume and retry attempt (vectorized). A
  /// tripped token aborts the plan with the token's status code (never
  /// degraded, even in best-effort mode — cancellation means the caller no
  /// longer wants the answer). Not owned; null = never cancelled.
  const CancelToken* cancel = nullptr;
  /// Engine selection; vectorized is the default, the row engine is the
  /// always-available oracle.
  ExecutionEngine engine = ExecutionEngine::kVectorized;
  /// Morsel-driven intra-plan parallelism for the vectorized engine
  /// (DESIGN.md §13): the number of execution workers for one ExecutePlan
  /// call. 1 (the default) is the historic single-threaded engine; higher
  /// counts split large batches into cache-sized morsels, run partitioned
  /// parallel hash builds/probes and dedup, and overlap the batched source
  /// dispatch with downstream operator work. Results — tables, row order,
  /// statuses, and retry accounting — are identical at every setting; the
  /// row-oracle engine ignores this knob.
  int exec_parallelism = 1;
  /// Rows per morsel; 0 (the default) derives the size from the L2 cache
  /// (DeriveMorselRows). Only consulted when exec_parallelism > 1.
  size_t morsel_rows = 0;
  /// Source-health feedback (DESIGN.md §10): when set, the executor reports
  /// the *final* outcome of every access binding — success, or failure after
  /// retry exhaustion / breaker trip / open-breaker short-circuit / failed
  /// batch entry — so the registry's EWMA and quarantine state machine run
  /// off real executor observations. Deadline expiries and cancellations are
  /// not reported: they say the caller ran out of patience, not that the
  /// source is sick. Not owned; null = no tracking (the historic default).
  SourceHealthRegistry* health = nullptr;
};

/// Outcome of running a plan against a source.
struct ExecutionResult {
  /// The content of T_fin projected to the plan's output attributes; its
  /// columns align position-wise with the query's free variables.
  Table output;
  int access_commands = 0;
  /// Per-tuple source invocations that *succeeded* (see SimulatedSource
  /// accounting for distinct pairs / charged cost).
  size_t source_calls = 0;
  /// True iff every access binding was answered in full: no access was
  /// abandoned and no outcome was truncated. When false the output is a
  /// best-effort under-approximation of the exact answer.
  bool complete = true;
  /// Access bindings whose rows are missing or truncated.
  int degraded_accesses = 0;
  RetryStats retry;
  /// Per-operator batch accounting (batches, rows in/out, probe hits,
  /// batched access dispatches). Populated by both engines for the access
  /// path; operator-level numbers are filled in by the vectorized engine.
  ExecStats exec;
};

/// Executes `plan` against `source` (§2 semantics): commands run in
/// sequence, temporary tables start empty, each access command feeds every
/// distinct input tuple of its input expression into the method, retrying
/// transient failures per `options.retry`. Distinct bindings are collected
/// in first-appearance order and dispatched as one TryAccessBatch call per
/// access command (per-binding retries continue individually); with a
/// circuit breaker armed the executor degrades to per-binding dispatch so
/// an opened breaker keeps later bindings away from the source. If
/// `final_env` is non-null it receives the temporary-table environment
/// (useful in tests).
Result<ExecutionResult> ExecutePlan(const Plan& plan, AccessSource& source,
                                    const ExecutionOptions& options,
                                    TableEnv* final_env = nullptr);

/// Historic entry point: direct execution with default options (single
/// meaningful attempt on an infallible source, no deadlines).
Result<ExecutionResult> ExecutePlan(const Plan& plan, SimulatedSource& source,
                                    TableEnv* final_env = nullptr);

}  // namespace lcp

#endif  // LCP_RUNTIME_EXECUTOR_H_
