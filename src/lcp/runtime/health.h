#ifndef LCP_RUNTIME_HEALTH_H_
#define LCP_RUNTIME_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "lcp/base/clock.h"
#include "lcp/data/instance.h"
#include "lcp/logic/ids.h"
#include "lcp/schema/schema.h"

namespace lcp {

/// Health of one access method, as observed by the executor (see DESIGN.md
/// §10, "Source health and failover"). The state machine:
///
///   kHealthy ──(EWMA failure rate ≥ degraded_threshold)──▶ kDegraded
///   kHealthy/kDegraded ──(consecutive failures ≥ cap)────▶ kQuarantined
///   kQuarantined ──(quarantine timer expires, one probe)─▶ kProbing
///   kProbing ──(probe succeeds)──────────────────────────▶ kHealthy
///   kProbing ──(probe fails)──(backed-off timer)─────────▶ kQuarantined
///
/// Only kQuarantined methods are excluded from planning; kDegraded is an
/// early-warning band (the method still serves, the EWMA just crossed the
/// threshold), and kProbing admits exactly one in-flight recovery probe.
enum class MethodHealth { kHealthy, kDegraded, kQuarantined, kProbing };

const char* MethodHealthName(MethodHealth health);

/// Tuning knobs of the registry. Defaults quarantine after three straight
/// failed bindings and re-probe after 100 virtual milliseconds, doubling the
/// window on every failed probe.
struct HealthOptions {
  /// Weight of the newest sample in the exponentially weighted moving
  /// average of the per-binding failure indicator (1 = fail).
  double ewma_alpha = 0.3;
  /// EWMA at or above this marks the method kDegraded (early warning).
  double degraded_threshold = 0.5;
  /// Consecutive final-outcome failures that trip quarantine. Retries inside
  /// one binding do not count — only the binding's final outcome does.
  int quarantine_after_consecutive = 3;
  /// Base quarantine window on the registry clock.
  int64_t quarantine_micros = 100000;
  /// Each failed probe multiplies the next window, up to the max.
  double quarantine_backoff = 2.0;
  int64_t max_quarantine_micros = 1600000;
  /// Clock the quarantine timers run on; null = process SystemClock.
  /// Virtual clocks make the whole recovery cycle deterministic.
  Clock* clock = nullptr;
};

/// Point-in-time view of one method's health (see Snapshot()).
struct MethodHealthSnapshot {
  MethodHealth state = MethodHealth::kHealthy;
  double ewma_failure_rate = 0.0;
  int consecutive_failures = 0;
  /// Absolute clock time the quarantine window ends; meaningful only while
  /// kQuarantined.
  int64_t quarantined_until = 0;
  uint64_t successes = 0;
  uint64_t failures = 0;
  uint64_t probes_sent = 0;
};

/// Registry-wide counters (cumulative, lock-free snapshot).
struct HealthStats {
  uint64_t quarantines = 0;     ///< kQuarantined entries (incl. re-entries).
  uint64_t probes_sent = 0;     ///< Recovery probes admitted.
  uint64_t probes_failed = 0;   ///< Probes that sent the method back.
  uint64_t recoveries = 0;      ///< Probes that restored kHealthy.
  uint64_t epoch_bumps = 0;     ///< Availability-epoch advances.
};

/// Tracks per-access-method health across every worker of a service, fed by
/// executor outcomes (final per-binding failures: retry exhaustion, breaker
/// trips, failed TryAccessBatch entries) and consumed by the planner as an
/// exclusion mask (`SearchOptions::excluded_methods`) and by the plan cache
/// as an availability epoch.
///
/// The availability epoch advances whenever the *exclusion mask* changes —
/// a method entering quarantine or being re-admitted by a probe — so cache
/// keys of the form (fingerprint, schema epoch, availability epoch) make
/// plans routed around an outage unreachable the moment the outage heals
/// (and vice versa): the cheap primary plan wins its slot back through one
/// re-plan instead of a stop-the-world flush.
///
/// Thread model: Record*/AdmitProbe/TakeDueProbes take one mutex (the
/// registry is shared by all workers; per-method sharding is not worth it at
/// realistic method counts). availability_epoch() and IsQuarantined() are
/// lock-free reads, safe from any thread.
class SourceHealthRegistry {
 public:
  /// `schema` must outlive the registry (method ids index its table).
  SourceHealthRegistry(const Schema* schema, HealthOptions options);

  /// Records the final outcome of one access binding. `binding` (the
  /// method's input values) is captured on failure as the recovery-probe
  /// payload, so probes replay a real request that is known to have failed.
  /// While a method is kProbing, the outcome is interpreted as the probe
  /// result: success restores kHealthy (and bumps the epoch), failure
  /// re-quarantines with a backed-off window.
  void RecordSuccess(AccessMethodId method);
  void RecordFailure(AccessMethodId method, const Tuple& binding);

  /// Claims every method whose quarantine window has expired, transitioning
  /// each to kProbing, and returns (method, probe binding) pairs. The caller
  /// owns sending the probes — typically one TryAccess per pair against its
  /// private source, reported back via RecordSuccess / RecordFailure.
  /// At most one claimant gets each method per window (half-open semantics).
  struct Probe {
    AccessMethodId method = kInvalidAccessMethod;
    Tuple binding;
  };
  std::vector<Probe> TakeDueProbes();

  /// True iff the method is currently excluded from planning.
  bool IsQuarantined(AccessMethodId method) const {
    return quarantined_[static_cast<size_t>(method)].load(
               std::memory_order_acquire) != 0;
  }

  /// The current exclusion mask as a method-id list (for
  /// SearchOptions::excluded_methods). Empty when everything is serving.
  std::vector<AccessMethodId> ExcludedMethods() const;

  /// Monotone counter of exclusion-mask changes; see class comment.
  uint64_t availability_epoch() const {
    return availability_epoch_.load(std::memory_order_acquire);
  }

  /// Number of methods currently quarantined (excluded from planning).
  size_t NumQuarantined() const;

  MethodHealthSnapshot Snapshot(AccessMethodId method) const;
  HealthStats stats() const;

  const Schema& schema() const { return *schema_; }

 private:
  struct MethodState {
    MethodHealth state = MethodHealth::kHealthy;
    double ewma = 0.0;
    int consecutive_failures = 0;
    int64_t quarantined_until = 0;
    /// Current quarantine window; grows on failed probes, resets on
    /// recovery.
    int64_t window_micros = 0;
    Tuple probe_binding;
    uint64_t successes = 0;
    uint64_t failures = 0;
    uint64_t probes_sent = 0;
  };

  /// Moves `s` into quarantine (arming the timer) and updates the mask +
  /// epoch. Caller holds mutex_.
  void Quarantine(size_t index, MethodState& s, bool backoff);
  void BumpEpoch();

  const Schema* schema_;
  HealthOptions options_;
  Clock* clock_;

  mutable std::mutex mutex_;
  std::vector<MethodState> states_;

  /// Lock-free mirror of "state == kQuarantined" per method, so the serving
  /// hot path (building the exclusion mask, epoch reads) never takes the
  /// mutex.
  std::vector<std::atomic<int>> quarantined_;
  std::atomic<uint64_t> availability_epoch_{1};

  std::atomic<uint64_t> quarantines_{0};
  std::atomic<uint64_t> probes_sent_{0};
  std::atomic<uint64_t> probes_failed_{0};
  std::atomic<uint64_t> recoveries_{0};
  std::atomic<uint64_t> epoch_bumps_{0};
};

}  // namespace lcp

#endif  // LCP_RUNTIME_HEALTH_H_
