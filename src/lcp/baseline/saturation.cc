#include "lcp/baseline/saturation.h"

#include <unordered_set>

#include "lcp/base/strings.h"
#include "lcp/data/query_eval.h"

namespace lcp {

namespace {

/// Enumerates all `width`-tuples over `values`, invoking `fn`; returns false
/// if `fn` ever returns false.
bool ForEachTuple(const std::vector<Value>& values, int width,
                  const std::function<bool(const Tuple&)>& fn) {
  Tuple tuple(width);
  std::function<bool(int)> rec = [&](int pos) {
    if (pos == width) return fn(tuple);
    for (const Value& v : values) {
      tuple[pos] = v;
      if (!rec(pos + 1)) return false;
    }
    return true;
  };
  return rec(0);
}

}  // namespace

Result<SaturationResult> RunSaturation(const ConjunctiveQuery& query,
                                       SimulatedSource& source,
                                       const SaturationOptions& options) {
  const Schema& schema = source.schema();
  SaturationResult result;

  // Accessible values: schema constants plus the query's constants.
  std::vector<Value> values;
  std::unordered_set<Value, ValueHash> value_set;
  auto add_value = [&](const Value& v) {
    if (value_set.insert(v).second) values.push_back(v);
  };
  for (const Value& c : schema.constants()) add_value(c);
  for (const Atom& atom : query.atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_constant()) add_value(t.constant());
    }
  }

  // Retrieved facts accumulate in a scratch instance over the same schema.
  Instance retrieved(&schema);

  for (int round = 0; round < options.rounds; ++round) {
    ++result.rounds_run;
    bool changed = false;
    // Snapshot: accesses this round use the values known at round start.
    std::vector<Value> snapshot = values;
    for (AccessMethodId m = 0; m < schema.num_access_methods(); ++m) {
      const AccessMethod& method = schema.access_method(m);
      const int width = static_cast<int>(method.input_positions.size());
      bool within_budget = ForEachTuple(snapshot, width, [&](const Tuple& in) {
        if (result.source_calls >= options.max_source_calls) return false;
        ++result.source_calls;
        for (const Tuple& tuple : source.Access(m, in)) {
          if (retrieved.AddFact(method.relation, tuple)) {
            ++result.facts_retrieved;
            changed = true;
          }
          for (const Value& v : tuple) {
            if (value_set.find(v) == value_set.end()) {
              add_value(v);
              changed = true;
            }
          }
        }
        return true;
      });
      if (!within_budget) {
        return ResourceExhaustedError(
            StrCat("saturation exceeded ", options.max_source_calls,
                   " source calls in round ", round + 1,
                   " (the exponential blow-up of P_k)"));
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }
  result.answers = EvaluateQuery(query, retrieved);
  return result;
}

}  // namespace lcp
