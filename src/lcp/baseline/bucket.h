#ifndef LCP_BASELINE_BUCKET_H_
#define LCP_BASELINE_BUCKET_H_

#include <optional>
#include <string>
#include <vector>

#include "lcp/base/result.h"
#include "lcp/logic/conjunctive_query.h"
#include "lcp/schema/schema.h"

namespace lcp {

/// A view: a relation of the schema defined as a conjunctive query over
/// other (base) relations of the same schema. The definition's free
/// variables correspond position-wise to the view relation's columns.
struct ViewDefinition {
  RelationId view = kInvalidRelation;
  ConjunctiveQuery definition;
};

struct BucketStats {
  int candidates_generated = 0;
  int candidates_checked = 0;
};

/// A bucket-algorithm baseline for answering queries using views, in the
/// style of Levy et al. (the comparison point generalized by Theorem 6).
/// For each query subgoal it collects the view atoms that can cover it,
/// then enumerates one choice per subgoal, builds the candidate conjunctive
/// rewriting over the view relations, and keeps the first candidate whose
/// expansion is *equivalent* to the query (complete-answer semantics, as in
/// the paper — not maximal containment).
///
/// Returns the rewriting (a CQ over view relations) or nullopt if no
/// equivalent rewriting exists among the candidates.
Result<std::optional<ConjunctiveQuery>> BucketRewrite(
    const Schema& schema, const ConjunctiveQuery& query,
    const std::vector<ViewDefinition>& views, BucketStats* stats = nullptr);

/// Expands a CQ over view relations into a CQ over base relations by
/// inlining each view's definition (existential variables freshened).
/// Atoms over non-view relations are kept as-is.
Result<ConjunctiveQuery> ExpandViews(const ConjunctiveQuery& rewriting,
                                     const std::vector<ViewDefinition>& views);

}  // namespace lcp

#endif  // LCP_BASELINE_BUCKET_H_
