#include "lcp/baseline/bucket.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "lcp/base/strings.h"
#include "lcp/logic/containment.h"

namespace lcp {

namespace {

/// Renames every variable of `atom` via `mapping`, leaving constants.
Atom SubstituteAtom(const Atom& atom,
                    const std::unordered_map<std::string, Term>& mapping) {
  Atom out = atom;
  for (Term& t : out.terms) {
    if (t.is_variable()) {
      auto it = mapping.find(t.var());
      if (it != mapping.end()) t = it->second;
    }
  }
  return out;
}

/// Tries to extend `mapping` so that `def_atom` maps onto `subgoal`.
bool UnifyDefAtomWithSubgoal(
    const Atom& def_atom, const Atom& subgoal,
    std::unordered_map<std::string, Term>& mapping) {
  std::vector<std::string> added;
  for (size_t i = 0; i < def_atom.terms.size(); ++i) {
    const Term& dt = def_atom.terms[i];
    const Term& qt = subgoal.terms[i];
    if (dt.is_constant()) {
      if (!qt.is_constant() || !(dt.constant() == qt.constant())) {
        for (const std::string& v : added) mapping.erase(v);
        return false;
      }
      continue;
    }
    auto it = mapping.find(dt.var());
    if (it == mapping.end()) {
      mapping.emplace(dt.var(), qt);
      added.push_back(dt.var());
    } else if (!(it->second == qt)) {
      for (const std::string& v : added) mapping.erase(v);
      return false;
    }
  }
  return true;
}

/// A MiniCon-style coverage description: one usage of a view covering a set
/// of query subgoals through a single consistent mapping of the view's
/// definition variables to query terms.
struct Coverage {
  int view_index;
  std::unordered_map<std::string, Term> mapping;
  std::set<int> covered;

  std::string Key() const {
    std::vector<std::string> parts;
    for (const auto& [var, term] : mapping) {
      parts.push_back(StrCat(var, "=", term.ToString()));
    }
    std::sort(parts.begin(), parts.end());
    std::vector<int> cov(covered.begin(), covered.end());
    return StrCat(view_index, "|", StrJoin(cov, ","), "|",
                  StrJoin(parts, ";"));
  }
};

/// Enumerates the coverages of `view` against the query: every consistent
/// assignment of each definition atom to either a query subgoal or "skip".
void EnumerateCoverages(int view_index, const ConjunctiveQuery& def,
                        const ConjunctiveQuery& query,
                        std::vector<Coverage>& out,
                        std::unordered_set<std::string>& seen) {
  std::unordered_map<std::string, Term> mapping;
  std::set<int> covered;
  std::function<void(size_t)> rec = [&](size_t atom_index) {
    if (atom_index == def.atoms.size()) {
      if (covered.empty()) return;
      Coverage coverage{view_index, mapping, covered};
      if (seen.insert(coverage.Key()).second) {
        out.push_back(std::move(coverage));
      }
      return;
    }
    // Option 1: this definition atom covers some query subgoal.
    for (size_t g = 0; g < query.atoms.size(); ++g) {
      if (def.atoms[atom_index].relation != query.atoms[g].relation) continue;
      std::unordered_map<std::string, Term> saved = mapping;
      if (UnifyDefAtomWithSubgoal(def.atoms[atom_index], query.atoms[g],
                                  mapping)) {
        covered.insert(static_cast<int>(g));
        rec(atom_index + 1);
        covered.erase(static_cast<int>(g));
        mapping = std::move(saved);
      }
    }
    // Option 2: skip (the atom's unmapped variables stay existential in the
    // expansion).
    rec(atom_index + 1);
  };
  rec(0);
}

}  // namespace

Result<ConjunctiveQuery> ExpandViews(const ConjunctiveQuery& rewriting,
                                     const std::vector<ViewDefinition>& views) {
  std::unordered_map<RelationId, const ViewDefinition*> by_relation;
  for (const ViewDefinition& view : views) {
    by_relation[view.view] = &view;
  }
  ConjunctiveQuery expanded;
  expanded.name = rewriting.name + "_expanded";
  expanded.free_variables = rewriting.free_variables;
  int fresh_counter = 0;
  for (const Atom& atom : rewriting.atoms) {
    auto it = by_relation.find(atom.relation);
    if (it == by_relation.end()) {
      expanded.atoms.push_back(atom);
      continue;
    }
    const ConjunctiveQuery& def = it->second->definition;
    if (def.free_variables.size() != atom.terms.size()) {
      return InvalidArgumentError(
          StrCat("view definition arity mismatch for relation ",
                 atom.relation));
    }
    std::unordered_map<std::string, Term> mapping;
    for (size_t i = 0; i < def.free_variables.size(); ++i) {
      mapping.emplace(def.free_variables[i], atom.terms[i]);
    }
    // Freshen the definition's existential variables.
    for (const std::string& v : def.AllVariables()) {
      if (mapping.find(v) == mapping.end()) {
        mapping.emplace(v, Term::Var(StrCat("_e", fresh_counter++, "_", v)));
      }
    }
    for (const Atom& def_atom : def.atoms) {
      expanded.atoms.push_back(SubstituteAtom(def_atom, mapping));
    }
  }
  return expanded;
}

Result<std::optional<ConjunctiveQuery>> BucketRewrite(
    const Schema& schema, const ConjunctiveQuery& query,
    const std::vector<ViewDefinition>& views, BucketStats* stats) {
  (void)schema;
  // Phase 1: enumerate coverage descriptions (one per view usage).
  std::vector<Coverage> coverages;
  std::unordered_set<std::string> seen;
  for (size_t v = 0; v < views.size(); ++v) {
    EnumerateCoverages(static_cast<int>(v), views[v].definition, query,
                       coverages, seen);
  }
  // Index: which coverages cover subgoal g.
  std::vector<std::vector<int>> covering(query.atoms.size());
  for (size_t c = 0; c < coverages.size(); ++c) {
    for (int g : coverages[c].covered) covering[g].push_back(static_cast<int>(c));
  }
  for (size_t g = 0; g < query.atoms.size(); ++g) {
    if (covering[g].empty()) return std::optional<ConjunctiveQuery>();
  }

  // Phase 2: combine coverages into candidates covering every subgoal;
  // test each candidate's expansion for equivalence with the query.
  std::optional<ConjunctiveQuery> result;
  std::vector<int> chosen;
  int fresh_counter = 0;
  std::function<bool()> combine = [&]() -> bool {
    // Find the first uncovered subgoal.
    std::set<int> covered;
    for (int c : chosen) {
      covered.insert(coverages[c].covered.begin(),
                     coverages[c].covered.end());
    }
    int first_uncovered = -1;
    for (size_t g = 0; g < query.atoms.size(); ++g) {
      if (covered.count(static_cast<int>(g)) == 0) {
        first_uncovered = static_cast<int>(g);
        break;
      }
    }
    if (first_uncovered < 0) {
      // Build the candidate: one view atom per chosen coverage.
      if (stats != nullptr) ++stats->candidates_generated;
      ConjunctiveQuery candidate;
      candidate.name = query.name + "_over_views";
      candidate.free_variables = query.free_variables;
      for (int c : chosen) {
        const Coverage& coverage = coverages[c];
        const ViewDefinition& view = views[coverage.view_index];
        std::vector<Term> args;
        for (const std::string& head_var : view.definition.free_variables) {
          auto it = coverage.mapping.find(head_var);
          if (it != coverage.mapping.end()) {
            args.push_back(it->second);
          } else {
            args.push_back(Term::Var(StrCat("_f", fresh_counter++)));
          }
        }
        candidate.atoms.push_back(Atom(view.view, std::move(args)));
      }
      if (!candidate.Validate().ok()) return false;
      if (stats != nullptr) ++stats->candidates_checked;
      auto expanded = ExpandViews(candidate, views);
      if (expanded.ok() && expanded->Validate().ok() &&
          AreEquivalent(*expanded, query)) {
        result = std::move(candidate);
        return true;
      }
      return false;
    }
    if (chosen.size() >= query.atoms.size()) return false;  // Length cap.
    for (int c : covering[first_uncovered]) {
      chosen.push_back(c);
      if (combine()) return true;
      chosen.pop_back();
    }
    return false;
  };
  combine();
  return result;
}

}  // namespace lcp
