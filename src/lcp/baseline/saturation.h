#ifndef LCP_BASELINE_SATURATION_H_
#define LCP_BASELINE_SATURATION_H_

#include <vector>

#include "lcp/base/result.h"
#include "lcp/data/instance.h"
#include "lcp/logic/conjunctive_query.h"
#include "lcp/runtime/source.h"

namespace lcp {

/// Result of running the saturation baseline.
struct SaturationResult {
  /// Answer tuples of the query evaluated over the retrieved facts.
  std::vector<Tuple> answers;
  size_t source_calls = 0;
  size_t facts_retrieved = 0;
  int rounds_run = 0;
  /// True if the last round added no new facts or values (the k-accessible
  /// part has converged).
  bool converged = false;
};

struct SaturationOptions {
  /// Number of rounds k (the P_k plan of §3): each round feeds every
  /// combination of currently accessible values into every method.
  int rounds = 2;
  /// Abort with RESOURCE_EXHAUSTED beyond this many source calls — the
  /// combinatorial blow-up is precisely the infeasibility the paper notes
  /// for this approach.
  size_t max_source_calls = 10000000;
};

/// The non-constructive baseline from §3's "alternative proofs" discussion:
/// compute the k-truncation of the accessible part by making *every
/// possible access* with all values produced so far, then evaluate the
/// query over the retrieved facts in the middleware. Complete for large
/// enough k whenever a plan exists, but makes exponentially many accesses —
/// the paper's argument for preferring proof-derived plans.
Result<SaturationResult> RunSaturation(const ConjunctiveQuery& query,
                                       SimulatedSource& source,
                                       const SaturationOptions& options);

}  // namespace lcp

#endif  // LCP_BASELINE_SATURATION_H_
