#ifndef LCP_CHASE_FACT_H_
#define LCP_CHASE_FACT_H_

#include <string>
#include <vector>

#include "lcp/chase/term_arena.h"
#include "lcp/logic/ids.h"
#include "lcp/schema/schema.h"

namespace lcp {

/// A ground fact of a chase configuration: a relation applied to chase
/// terms (labeled nulls and interned constants).
struct Fact {
  RelationId relation = kInvalidRelation;
  std::vector<ChaseTermId> terms;

  Fact() = default;
  Fact(RelationId rel, std::vector<ChaseTermId> args)
      : relation(rel), terms(std::move(args)) {}

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation == b.relation && a.terms == b.terms;
  }
};

struct FactHash {
  size_t operator()(const Fact& f) const {
    size_t h = static_cast<size_t>(f.relation) * 0x9e3779b97f4a7c15ULL;
    for (ChaseTermId t : f.terms) {
      h ^= static_cast<size_t>(static_cast<uint32_t>(t)) + 0x9e3779b9 +
           (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// Renders "R(eid_0, "smith")" style output for debugging and exploration
/// dumps.
std::string FactToString(const Fact& fact, const Schema& schema,
                         const TermArena& arena);

}  // namespace lcp

#endif  // LCP_CHASE_FACT_H_
