#ifndef LCP_CHASE_TERM_ARENA_H_
#define LCP_CHASE_TERM_ARENA_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "lcp/base/check.h"
#include "lcp/logic/value.h"

namespace lcp {

/// A term occurring in a chase configuration: either a labeled null ("chase
/// constant" in the paper) or an interned schema/data constant.
/// Encoding: ids >= 0 are labeled nulls, ids < 0 are constants (-1 - k
/// indexes the k-th interned constant).
using ChaseTermId = int32_t;

/// Sentinel for "not yet bound" in homomorphism search. Never a valid term.
inline constexpr ChaseTermId kUnboundTerm =
    std::numeric_limits<ChaseTermId>::min();

namespace internal {

/// Append-only store with wait-free reads concurrent with appends. Elements
/// live in fixed-size chunks that never move, so a published element's
/// address is stable forever; readers bounds-check against an atomic size
/// published with release order after the element (and its chunk pointer)
/// are written. Appends themselves must be serialized externally (TermArena
/// holds one mutation mutex for the whole arena).
///
/// Capacity is kMaxChunks * kChunkSize = 2^24 elements — far above anything
/// a single planning episode allocates (the proof search caps nodes at ~1e5
/// and charges every chase firing against a budget); Append checks the
/// ceiling.
template <typename T>
class ChunkedStore {
 public:
  static constexpr size_t kChunkSize = 4096;
  static constexpr size_t kMaxChunks = 4096;

  ChunkedStore() = default;
  ChunkedStore(const ChunkedStore&) = delete;
  ChunkedStore& operator=(const ChunkedStore&) = delete;
  ~ChunkedStore() {
    for (auto& chunk : chunks_) delete[] chunk.load(std::memory_order_relaxed);
  }

  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Caller must hold the owning arena's mutation mutex.
  size_t Append(T value) {
    size_t index = size_.load(std::memory_order_relaxed);
    LCP_CHECK(index < kChunkSize * kMaxChunks) << "ChunkedStore overflow";
    size_t chunk = index / kChunkSize;
    T* block = chunks_[chunk].load(std::memory_order_relaxed);
    if (block == nullptr) {
      block = new T[kChunkSize]();
      chunks_[chunk].store(block, std::memory_order_relaxed);
    }
    block[index % kChunkSize] = std::move(value);
    // Publishes the element, and transitively the chunk pointer, to any
    // reader that observes the new size with acquire order.
    size_.store(index + 1, std::memory_order_release);
    return index;
  }

  /// Valid for index < size() as observed by this thread.
  const T& operator[](size_t index) const {
    return chunks_[index / kChunkSize].load(std::memory_order_relaxed)
        [index % kChunkSize];
  }

 private:
  std::atomic<size_t> size_{0};
  std::array<std::atomic<T*>, kMaxChunks> chunks_{};
};

}  // namespace internal

/// Owns the labeled nulls and interned constants used by chase
/// configurations. One arena is shared by all configurations of a proof
/// search, so term ids are stable across the search tree.
///
/// Thread model: reads of already-published terms (ConstantOf, DepthOf,
/// DisplayName, num_nulls) are wait-free and safe concurrently with other
/// threads creating new terms; NewNull and InternConstant serialize on an
/// internal mutex. This is what lets the parallel proof search share one
/// arena across its workers — every worker can mint nulls inside its chase
/// closures while others read term names for plan construction. A term id
/// obtained from a configuration is always safe to resolve: it was
/// published (with release order) before the configuration holding it was
/// handed over.
class TermArena {
 public:
  TermArena() = default;
  TermArena(const TermArena&) = delete;
  TermArena& operator=(const TermArena&) = delete;

  static bool IsNull(ChaseTermId id) { return id >= 0; }
  static bool IsConstant(ChaseTermId id) {
    return id < 0 && id != kUnboundTerm;
  }

  /// Interns a constant value (idempotent).
  ChaseTermId InternConstant(const Value& value);

  /// Creates a fresh labeled null. Its display name is `base_name` with the
  /// null id appended (globally unique; display names double as plan table
  /// attributes). `depth` is its chase-generation depth (0 for
  /// canonical-database nulls).
  ChaseTermId NewNull(const std::string& base_name, int depth);

  const Value& ConstantOf(ChaseTermId id) const {
    LCP_CHECK(IsConstant(id));
    return constants_[static_cast<size_t>(-1 - id)];
  }

  int DepthOf(ChaseTermId id) const {
    if (IsConstant(id)) return 0;
    return nulls_[static_cast<size_t>(id)].depth;
  }

  /// Printable name: nulls render as their display name, constants as their
  /// value.
  std::string DisplayName(ChaseTermId id) const;

  size_t num_nulls() const { return nulls_.size(); }

 private:
  struct NullInfo {
    std::string name;
    int depth = 0;
  };

  std::mutex mutate_mutex_;
  internal::ChunkedStore<NullInfo> nulls_;
  internal::ChunkedStore<Value> constants_;
  std::unordered_map<Value, ChaseTermId, ValueHash> constant_ids_;
};

}  // namespace lcp

#endif  // LCP_CHASE_TERM_ARENA_H_
