#ifndef LCP_CHASE_TERM_ARENA_H_
#define LCP_CHASE_TERM_ARENA_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "lcp/base/check.h"
#include "lcp/logic/value.h"

namespace lcp {

/// A term occurring in a chase configuration: either a labeled null ("chase
/// constant" in the paper) or an interned schema/data constant.
/// Encoding: ids >= 0 are labeled nulls, ids < 0 are constants (-1 - k
/// indexes the k-th interned constant).
using ChaseTermId = int32_t;

/// Sentinel for "not yet bound" in homomorphism search. Never a valid term.
inline constexpr ChaseTermId kUnboundTerm =
    std::numeric_limits<ChaseTermId>::min();

/// Owns the labeled nulls and interned constants used by chase
/// configurations. One arena is shared by all configurations of a proof
/// search, so term ids are stable across the search tree.
class TermArena {
 public:
  TermArena() = default;
  TermArena(const TermArena&) = delete;
  TermArena& operator=(const TermArena&) = delete;

  static bool IsNull(ChaseTermId id) { return id >= 0; }
  static bool IsConstant(ChaseTermId id) {
    return id < 0 && id != kUnboundTerm;
  }

  /// Interns a constant value (idempotent).
  ChaseTermId InternConstant(const Value& value);

  /// Creates a fresh labeled null. Its display name is `base_name` with the
  /// null id appended (globally unique; display names double as plan table
  /// attributes). `depth` is its chase-generation depth (0 for
  /// canonical-database nulls).
  ChaseTermId NewNull(const std::string& base_name, int depth);

  const Value& ConstantOf(ChaseTermId id) const {
    LCP_CHECK(IsConstant(id));
    return constants_[static_cast<size_t>(-1 - id)];
  }

  int DepthOf(ChaseTermId id) const {
    if (IsConstant(id)) return 0;
    return null_depths_[static_cast<size_t>(id)];
  }

  /// Printable name: nulls render as their display name, constants as their
  /// value.
  std::string DisplayName(ChaseTermId id) const;

  size_t num_nulls() const { return null_names_.size(); }

 private:
  std::vector<std::string> null_names_;
  std::vector<int> null_depths_;
  std::vector<Value> constants_;
  std::unordered_map<Value, ChaseTermId, ValueHash> constant_ids_;
};

}  // namespace lcp

#endif  // LCP_CHASE_TERM_ARENA_H_
