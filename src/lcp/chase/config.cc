#include "lcp/chase/config.h"

#include <algorithm>
#include <sstream>

namespace lcp {

bool ChaseConfig::Add(const Fact& fact) {
  if (!index_.insert(fact).second) return false;
  by_relation_[fact.relation].push_back(static_cast<int>(facts_.size()));
  facts_.push_back(fact);
  return true;
}

const std::vector<int>& ChaseConfig::FactsOf(RelationId relation) const {
  static const std::vector<int> kEmpty;
  auto it = by_relation_.find(relation);
  return it == by_relation_.end() ? kEmpty : it->second;
}

std::vector<ChaseTermId> ChaseConfig::TermsAt(RelationId relation,
                                              int position) const {
  std::vector<ChaseTermId> terms;
  std::unordered_set<ChaseTermId> seen;
  for (int idx : FactsOf(relation)) {
    ChaseTermId t = facts_[idx].terms[position];
    if (seen.insert(t).second) terms.push_back(t);
  }
  return terms;
}

std::string ChaseConfig::ToString(const Schema& schema,
                                  const TermArena& arena) const {
  std::ostringstream os;
  for (const Fact& fact : facts_) {
    os << "  " << FactToString(fact, schema, arena) << "\n";
  }
  return os.str();
}

}  // namespace lcp
