#include "lcp/chase/config.h"

#include <sstream>

namespace lcp {

namespace {
const std::vector<int> kNoFacts;
const std::vector<ChaseTermId> kNoTerms;
}  // namespace

bool ChaseConfig::Add(const Fact& fact) {
  if (!index_.insert(fact).second) return false;
  by_relation_[fact.relation].push_back(static_cast<int>(facts_.size()));
  facts_.push_back(fact);
  return true;
}

void ChaseConfig::EnsureIndexed() const {
  // Double-checked: the fully-indexed fast path is one acquire load. The
  // release store below pairs with it, so any reader that sees the updated
  // watermark also sees the completed map writes.
  if (indexed_up_to_.load(std::memory_order_acquire) == facts_.size()) return;
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (indexed_up_to_.load(std::memory_order_relaxed) == facts_.size()) return;
  CatchUpPositionalIndexLocked();
}

void ChaseConfig::CatchUpPositionalIndexLocked() const {
  for (size_t i = indexed_up_to_.load(std::memory_order_relaxed);
       i < facts_.size(); ++i) {
    const Fact& fact = facts_[i];
    for (int32_t pos = 0; pos < static_cast<int32_t>(fact.terms.size());
         ++pos) {
      std::vector<int>& bucket =
          by_position_[PosTermKey{fact.relation, pos, fact.terms[pos]}];
      if (bucket.empty()) {
        // First occurrence of this term at (relation, position): record it in
        // the distinct-terms index.
        terms_at_[PosKey{fact.relation, pos}].push_back(fact.terms[pos]);
      }
      bucket.push_back(static_cast<int>(i));
    }
  }
  indexed_up_to_.store(facts_.size(), std::memory_order_release);
}

const std::vector<int>& ChaseConfig::FactsOf(RelationId relation) const {
  auto it = by_relation_.find(relation);
  return it == by_relation_.end() ? kNoFacts : it->second;
}

const std::vector<int>& ChaseConfig::FactsWith(RelationId relation,
                                               int position,
                                               ChaseTermId term) const {
  EnsureIndexed();
  auto it = by_position_.find(
      PosTermKey{relation, static_cast<int32_t>(position), term});
  return it == by_position_.end() ? kNoFacts : it->second;
}

const std::vector<ChaseTermId>& ChaseConfig::TermsAt(RelationId relation,
                                                     int position) const {
  EnsureIndexed();
  auto it = terms_at_.find(PosKey{relation, static_cast<int32_t>(position)});
  return it == terms_at_.end() ? kNoTerms : it->second;
}

std::string ChaseConfig::ToString(const Schema& schema,
                                  const TermArena& arena) const {
  std::ostringstream os;
  for (const Fact& fact : facts_) {
    os << "  " << FactToString(fact, schema, arena) << "\n";
  }
  return os.str();
}

}  // namespace lcp
