#ifndef LCP_CHASE_ENGINE_H_
#define LCP_CHASE_ENGINE_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lcp/base/result.h"
#include "lcp/chase/config.h"
#include "lcp/chase/matcher.h"
#include "lcp/chase/term_arena.h"
#include "lcp/logic/conjunctive_query.h"
#include "lcp/logic/tgd.h"
#include "lcp/schema/schema.h"

namespace lcp {

/// Controls chase termination. The restricted chase is used throughout: a
/// trigger fires only if its head has no witness in the configuration (§4,
/// "candidate match").
struct ChaseOptions {
  /// Hard cap on rule firings across the whole run.
  int max_firings = 1000000;
  /// Maximum generation depth for invented nulls; triggers that would exceed
  /// it are skipped. -1 means unlimited.
  int max_null_depth = -1;
  /// Enables the local blocking condition for guarded TGDs (§5): a trigger
  /// all of whose frontier terms are invented nulls is skipped if an
  /// isomorphic "guarded bag" (same TGD, same canonical locale of facts over
  /// the frontier terms) was fired before. Sound (never adds wrong facts);
  /// may lose completeness in corner cases — see DESIGN.md.
  bool use_guarded_blocking = false;
  /// If true, hitting max_firings is an error instead of a silent stop.
  bool fail_on_firing_cap = true;
};

struct ChaseStats {
  int firings = 0;
  int facts_added = 0;
  int rounds = 0;
  bool reached_fixpoint = false;
  int blocked_triggers = 0;
  int depth_capped_triggers = 0;
};

/// A TGD compiled against a shared arena for fast re-firing.
struct CompiledTgd {
  const Tgd* source = nullptr;
  VariableTable vars;
  std::vector<PatternAtom> body;
  std::vector<PatternAtom> head;
  /// Variable indexes occurring in the body.
  std::vector<bool> in_body;
  /// Variable indexes occurring in the head but not the body.
  std::vector<int> existential_vars;
  /// Variable indexes shared between body and head.
  std::vector<int> frontier_vars;
};

CompiledTgd CompileTgd(const Tgd& tgd, TermArena& arena);

/// Forward-chaining proof engine (the chase, §4). The engine is stateless
/// across runs apart from the shared arena; blocking signatures are scoped
/// to a single Run call.
class ChaseEngine {
 public:
  ChaseEngine(const Schema* schema, TermArena* arena);

  /// Fires `tgds` on `config` (restricted chase, round-robin) until fixpoint
  /// or a cap triggers.
  Result<ChaseStats> Run(const std::vector<CompiledTgd>& tgds,
                         const ChaseOptions& options, ChaseConfig& config);

  /// Convenience: compiles and runs raw TGDs.
  Result<ChaseStats> Run(const std::vector<Tgd>& tgds,
                         const ChaseOptions& options, ChaseConfig& config);

  const Schema& schema() const { return *schema_; }
  TermArena& arena() { return *arena_; }

 private:
  const Schema* schema_;
  TermArena* arena_;
};

/// The canonical database of a conjunctive query (§4): one labeled null per
/// variable, one fact per atom.
struct CanonicalDatabase {
  ChaseConfig config;
  std::unordered_map<std::string, ChaseTermId> var_to_term;
};

CanonicalDatabase BuildCanonicalDatabase(const ConjunctiveQuery& query,
                                         TermArena& arena);

}  // namespace lcp

#endif  // LCP_CHASE_ENGINE_H_
