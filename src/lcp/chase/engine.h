#ifndef LCP_CHASE_ENGINE_H_
#define LCP_CHASE_ENGINE_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lcp/base/budget.h"
#include "lcp/base/result.h"
#include "lcp/chase/config.h"
#include "lcp/chase/matcher.h"
#include "lcp/chase/term_arena.h"
#include "lcp/logic/conjunctive_query.h"
#include "lcp/logic/tgd.h"
#include "lcp/schema/schema.h"

namespace lcp {

/// How ChaseEngine::Run enumerates triggers (see DESIGN.md, "Chase engine
/// internals").
enum class ChaseEvaluationMode {
  /// Re-enumerate every body homomorphism of every TGD each round. Kept as a
  /// differential-testing oracle for the semi-naïve path.
  kNaive,
  /// Semi-naïve (delta-driven): after the first round, only enumerate
  /// triggers whose body match uses at least one fact added in the previous
  /// round, by pinning each body atom in turn to the delta.
  kSemiNaive,
};

/// Controls chase termination. The restricted chase is used throughout: a
/// trigger fires only if its head has no witness in the configuration (§4,
/// "candidate match").
struct ChaseOptions {
  /// Hard cap on rule firings across the whole run.
  int max_firings = 1000000;
  /// Maximum generation depth for invented nulls; triggers that would exceed
  /// it are skipped. -1 means unlimited.
  int max_null_depth = -1;
  /// Enables the local blocking condition for guarded TGDs (§5): a trigger
  /// all of whose frontier terms are invented nulls is skipped if an
  /// isomorphic "guarded bag" (same TGD, same canonical locale of facts over
  /// the frontier terms) was fired before. Sound (never adds wrong facts);
  /// may lose completeness in corner cases — see DESIGN.md.
  bool use_guarded_blocking = false;
  /// If true, hitting max_firings is an error instead of a silent stop.
  bool fail_on_firing_cap = true;
  /// Trigger-enumeration strategy. Semi-naïve is the default; the naive mode
  /// stays available as a reference oracle.
  ChaseEvaluationMode evaluation_mode = ChaseEvaluationMode::kSemiNaive;
  /// Optional shared execution budget (deadline + firing cap), checked
  /// cooperatively: once per firing and once per TGD pass. When the budget
  /// exhausts mid-run, Run returns its status (kDeadlineExceeded /
  /// kResourceExhausted) and the configuration keeps the facts derived so
  /// far — every derived fact is sound, the closure is merely incomplete.
  /// Not owned; null = unlimited.
  Budget* budget = nullptr;
};

struct ChaseStats {
  int firings = 0;
  int facts_added = 0;
  int rounds = 0;
  bool reached_fixpoint = false;
  int blocked_triggers = 0;
  int depth_capped_triggers = 0;
  /// Body homomorphisms enumerated (before the head-witness check).
  int triggers_enumerated = 0;
  /// Triggers dropped because the head already had a witness (at collection
  /// time or on the pre-firing re-check).
  int witness_skips = 0;
  /// Semi-naïve only: pinned (one-atom-in-delta) enumeration passes run.
  int delta_enumerations = 0;
  /// Positional-index buckets probed by the matcher on behalf of this run.
  long long index_probes = 0;
  /// Candidate facts scanned by the matcher's unification loop.
  long long candidates_scanned = 0;
};

/// A TGD compiled against a shared arena for fast re-firing.
struct CompiledTgd {
  const Tgd* source = nullptr;
  VariableTable vars;
  std::vector<PatternAtom> body;
  std::vector<PatternAtom> head;
  /// Variable indexes occurring in the body.
  std::vector<bool> in_body;
  /// Variable indexes occurring in the head but not the body.
  std::vector<int> existential_vars;
  /// Variable indexes shared between body and head.
  std::vector<int> frontier_vars;
};

CompiledTgd CompileTgd(const Tgd& tgd, TermArena& arena);

/// Forward-chaining proof engine (the chase, §4). The engine is stateless
/// across runs apart from the shared arena; blocking signatures are scoped
/// to a single Run call.
class ChaseEngine {
 public:
  ChaseEngine(const Schema* schema, TermArena* arena);

  /// Fires `tgds` on `config` (restricted chase, round-robin) until fixpoint
  /// or a cap triggers.
  Result<ChaseStats> Run(const std::vector<CompiledTgd>& tgds,
                         const ChaseOptions& options, ChaseConfig& config);

  /// Convenience: compiles and runs raw TGDs.
  Result<ChaseStats> Run(const std::vector<Tgd>& tgds,
                         const ChaseOptions& options, ChaseConfig& config);

  const Schema& schema() const { return *schema_; }
  TermArena& arena() { return *arena_; }

 private:
  const Schema* schema_;
  TermArena* arena_;
};

/// The canonical database of a conjunctive query (§4): one labeled null per
/// variable, one fact per atom.
struct CanonicalDatabase {
  ChaseConfig config;
  std::unordered_map<std::string, ChaseTermId> var_to_term;
};

CanonicalDatabase BuildCanonicalDatabase(const ConjunctiveQuery& query,
                                         TermArena& arena);

}  // namespace lcp

#endif  // LCP_CHASE_ENGINE_H_
