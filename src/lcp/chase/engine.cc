#include "lcp/chase/engine.h"

#include <algorithm>
#include <cstdint>

#include "lcp/base/strings.h"

namespace lcp {

CompiledTgd CompileTgd(const Tgd& tgd, TermArena& arena) {
  CompiledTgd compiled;
  compiled.source = &tgd;
  compiled.body = CompileAtoms(tgd.body, compiled.vars, arena);
  const int body_vars = compiled.vars.size();
  compiled.head = CompileAtoms(tgd.head, compiled.vars, arena);
  const int num_vars = compiled.vars.size();
  compiled.in_body.assign(num_vars, false);
  for (int i = 0; i < body_vars; ++i) compiled.in_body[i] = true;
  for (int i = 0; i < num_vars; ++i) {
    if (compiled.in_body[i]) {
      // Frontier = body variables that also occur in the head.
      bool in_head = false;
      for (const PatternAtom& atom : compiled.head) {
        for (const auto& slot : atom.slots) {
          if (slot.is_variable && slot.var_index == i) in_head = true;
        }
      }
      if (in_head) compiled.frontier_vars.push_back(i);
    } else {
      compiled.existential_vars.push_back(i);
    }
  }
  return compiled;
}

ChaseEngine::ChaseEngine(const Schema* schema, TermArena* arena)
    : schema_(schema), arena_(arena) {
  LCP_CHECK(schema != nullptr && arena != nullptr);
}

namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/// Canonical hash of a trigger's "guarded bag" (§5 blocking): the TGD plus
/// the isomorphism type of all configuration facts whose terms all lie in
/// the trigger's frontier image (constants kept concrete, nulls renamed by
/// first occurrence in insertion order). Structural hashing replaces the
/// former string signature, eliminating the per-trigger allocations; a
/// 64-bit collision can only block an extra trigger, the same failure class
/// the blocking condition already tolerates (see DESIGN.md).
uint64_t BagSignature(const CompiledTgd& tgd,
                      const std::vector<ChaseTermId>& assignment,
                      const ChaseConfig& config) {
  std::vector<ChaseTermId> frontier_terms;
  for (int v : tgd.frontier_vars) frontier_terms.push_back(assignment[v]);
  std::sort(frontier_terms.begin(), frontier_terms.end());
  frontier_terms.erase(
      std::unique(frontier_terms.begin(), frontier_terms.end()),
      frontier_terms.end());

  auto in_bag = [&](ChaseTermId t) {
    return TermArena::IsConstant(t) ||
           std::binary_search(frontier_terms.begin(), frontier_terms.end(), t);
  };
  std::unordered_map<ChaseTermId, uint64_t> canon;
  std::vector<uint64_t> fact_hashes;
  for (const Fact& fact : config.facts()) {
    bool local = true;
    for (ChaseTermId t : fact.terms) {
      if (!in_bag(t)) {
        local = false;
        break;
      }
    }
    if (!local) continue;
    uint64_t h =
        static_cast<uint32_t>(fact.relation) * 0x9e3779b97f4a7c15ULL;
    for (ChaseTermId t : fact.terms) {
      if (TermArena::IsConstant(t)) {
        // Tag constants apart from canonicalized nulls.
        h = HashCombine(
            h, (static_cast<uint64_t>(static_cast<uint32_t>(t)) << 1) | 1);
      } else {
        auto [it, inserted] = canon.emplace(t, canon.size());
        h = HashCombine(h, it->second << 1);
      }
    }
    fact_hashes.push_back(h);
  }
  std::sort(fact_hashes.begin(), fact_hashes.end());
  uint64_t sig = std::hash<std::string>{}(tgd.source->name);
  for (uint64_t fh : fact_hashes) sig = sig * 1099511628211ULL + fh;
  return sig;
}

struct Trigger {
  int tgd_index;
  std::vector<ChaseTermId> assignment;
};

/// Restricted-chase witness check: true if the head already holds under
/// `assignment`. With no existential variables the head is fully ground, so
/// each head fact is a single hash lookup; otherwise the existential
/// positions are left free and the matcher searches for a witness.
bool HeadWitnessed(const CompiledTgd& tgd,
                   const std::vector<ChaseTermId>& assignment,
                   const ChaseConfig& config, MatchStats* stats) {
  if (tgd.existential_vars.empty()) {
    Fact fact;
    for (const PatternAtom& atom : tgd.head) {
      fact.relation = atom.relation;
      fact.terms.clear();
      fact.terms.reserve(atom.slots.size());
      for (const auto& slot : atom.slots) {
        fact.terms.push_back(slot.is_variable ? assignment[slot.var_index]
                                              : slot.term);
      }
      if (!config.Contains(fact)) return false;
    }
    return true;
  }
  std::vector<ChaseTermId> head_assignment(assignment);
  for (int v : tgd.existential_vars) head_assignment[v] = kUnboundTerm;
  return HasHomomorphism(tgd.head, config, std::move(head_assignment),
                         MatchOptions{nullptr, stats});
}

}  // namespace

Result<ChaseStats> ChaseEngine::Run(const std::vector<CompiledTgd>& tgds,
                                    const ChaseOptions& options,
                                    ChaseConfig& config) {
  ChaseStats stats;
  std::unordered_set<uint64_t> fired_bags;
  const bool seminaive =
      options.evaluation_mode == ChaseEvaluationMode::kSemiNaive;
  MatchStats match_stats;
  const MatchOptions plain_match{nullptr, &match_stats};
  auto flush_match_stats = [&] {
    stats.index_probes = match_stats.index_probes;
    stats.candidates_scanned = match_stats.candidates_scanned;
  };
  // Semi-naïve delta discipline: facts with index < delta_begin were already
  // visible before the previous round's additions; [delta_begin, round_end)
  // is the current delta. Facts added during a round become the next delta.
  size_t delta_begin = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    ++stats.rounds;
    const size_t round_end = config.size();
    for (size_t t = 0; t < tgds.size(); ++t) {
      if (options.budget != nullptr) {
        // Cooperative cancellation point: one check per TGD pass bounds the
        // staleness of deadline detection to a single enumeration sweep.
        Status budget_status = options.budget->Check();
        if (!budget_status.ok()) {
          flush_match_stats();
          return budget_status;
        }
      }
      const CompiledTgd& tgd = tgds[t];
      // Collect the current triggers first: firing mutates the config, which
      // would invalidate the enumeration.
      std::vector<Trigger> triggers;
      std::vector<ChaseTermId> assignment(tgd.vars.size(), kUnboundTerm);
      auto collect = [&](const std::vector<ChaseTermId>& full) {
        ++stats.triggers_enumerated;
        // Restricted chase: skip if the head already has a witness.
        if (HeadWitnessed(tgd, full, config, &match_stats)) {
          ++stats.witness_skips;
        } else {
          triggers.push_back(Trigger{static_cast<int>(t), full});
        }
        return true;
      };
      if (!seminaive) {
        // Naive oracle: full re-enumeration against the current config.
        EnumerateHomomorphisms(tgd.body, config, assignment, collect,
                               plain_match);
      } else {
        // Pin each body atom in turn to the delta; earlier atoms are
        // restricted to pre-delta facts and later ones to the round
        // snapshot, so the pinned passes partition the new matches exactly
        // (classic semi-naïve rewriting). In the first round the delta is
        // the whole snapshot and only the first pass can produce matches.
        std::vector<FactWindow> windows(tgd.body.size());
        const size_t pins = delta_begin == 0 ? std::min<size_t>(
                                                   1, tgd.body.size())
                                             : tgd.body.size();
        for (size_t pin = 0; pin < pins; ++pin) {
          for (size_t a = 0; a < tgd.body.size(); ++a) {
            if (a < pin) {
              windows[a] = FactWindow{0, static_cast<int>(delta_begin)};
            } else if (a == pin) {
              windows[a] = FactWindow{static_cast<int>(delta_begin),
                                      static_cast<int>(round_end)};
            } else {
              windows[a] = FactWindow{0, static_cast<int>(round_end)};
            }
          }
          ++stats.delta_enumerations;
          EnumerateHomomorphisms(tgd.body, config, assignment, collect,
                                 MatchOptions{windows.data(), &match_stats});
        }
      }
      for (Trigger& trigger : triggers) {
        // Re-check: an earlier firing in this round may have satisfied it.
        if (HeadWitnessed(tgd, trigger.assignment, config, &match_stats)) {
          ++stats.witness_skips;
          continue;
        }

        // Depth accounting: new nulls live one level below the deepest
        // frontier term.
        int frontier_depth = 0;
        bool all_frontier_deep_nulls = !tgd.frontier_vars.empty();
        for (int v : tgd.frontier_vars) {
          ChaseTermId term = trigger.assignment[v];
          frontier_depth = std::max(frontier_depth, arena_->DepthOf(term));
          if (!TermArena::IsNull(term) || arena_->DepthOf(term) == 0) {
            all_frontier_deep_nulls = false;
          }
        }
        if (!tgd.existential_vars.empty() && options.max_null_depth >= 0 &&
            frontier_depth + 1 > options.max_null_depth) {
          ++stats.depth_capped_triggers;
          continue;
        }
        if (options.use_guarded_blocking && all_frontier_deep_nulls &&
            !tgd.existential_vars.empty()) {
          uint64_t sig = BagSignature(tgd, trigger.assignment, config);
          if (!fired_bags.insert(sig).second) {
            ++stats.blocked_triggers;
            continue;
          }
        }

        if (stats.firings >= options.max_firings) {
          flush_match_stats();
          if (options.fail_on_firing_cap) {
            return ResourceExhaustedError(
                StrCat("chase exceeded ", options.max_firings, " firings"));
          }
          stats.reached_fixpoint = false;
          return stats;
        }
        if (options.budget != nullptr) {
          Status budget_status = options.budget->ChargeFiring();
          if (!budget_status.ok()) {
            flush_match_stats();
            return budget_status;
          }
        }

        // Fire: invent nulls for the existential variables, add head facts.
        for (int v : tgd.existential_vars) {
          trigger.assignment[v] =
              arena_->NewNull(tgd.vars.name(v), frontier_depth + 1);
        }
        ++stats.firings;
        for (const PatternAtom& atom : tgd.head) {
          Fact fact;
          fact.relation = atom.relation;
          fact.terms.reserve(atom.slots.size());
          for (const auto& slot : atom.slots) {
            fact.terms.push_back(slot.is_variable
                                     ? trigger.assignment[slot.var_index]
                                     : slot.term);
          }
          if (config.Add(fact)) ++stats.facts_added;
        }
        progress = true;
      }
    }
    if (seminaive) {
      // Everything visible this round is "old" next round; the facts added
      // while firing form the next delta. No new facts means no new
      // triggers are derivable: fixpoint.
      delta_begin = round_end;
      progress = config.size() > round_end;
    }
  }
  stats.reached_fixpoint = true;
  flush_match_stats();
  return stats;
}

Result<ChaseStats> ChaseEngine::Run(const std::vector<Tgd>& tgds,
                                    const ChaseOptions& options,
                                    ChaseConfig& config) {
  std::vector<CompiledTgd> compiled;
  compiled.reserve(tgds.size());
  for (const Tgd& tgd : tgds) compiled.push_back(CompileTgd(tgd, *arena_));
  return Run(compiled, options, config);
}

CanonicalDatabase BuildCanonicalDatabase(const ConjunctiveQuery& query,
                                         TermArena& arena) {
  CanonicalDatabase canonical;
  for (const std::string& var : query.AllVariables()) {
    canonical.var_to_term.emplace(var, arena.NewNull(var, 0));
  }
  for (const Atom& atom : query.atoms) {
    Fact fact;
    fact.relation = atom.relation;
    fact.terms.reserve(atom.terms.size());
    for (const Term& term : atom.terms) {
      fact.terms.push_back(term.is_variable()
                               ? canonical.var_to_term.at(term.var())
                               : arena.InternConstant(term.constant()));
    }
    canonical.config.Add(fact);
  }
  return canonical;
}

}  // namespace lcp
