#include "lcp/chase/engine.h"

#include <algorithm>
#include <sstream>

#include "lcp/base/strings.h"

namespace lcp {

CompiledTgd CompileTgd(const Tgd& tgd, TermArena& arena) {
  CompiledTgd compiled;
  compiled.source = &tgd;
  compiled.body = CompileAtoms(tgd.body, compiled.vars, arena);
  const int body_vars = compiled.vars.size();
  compiled.head = CompileAtoms(tgd.head, compiled.vars, arena);
  compiled.in_body.assign(compiled.vars.size(), false);
  for (int i = 0; i < body_vars; ++i) compiled.in_body[i] = true;
  for (int i = 0; i < compiled.vars.size(); ++i) {
    if (compiled.in_body[i]) {
      // Frontier = body variables that also occur in the head.
      bool in_head = false;
      for (const PatternAtom& atom : compiled.head) {
        for (const auto& slot : atom.slots) {
          if (slot.is_variable && slot.var_index == i) in_head = true;
        }
      }
      if (in_head) compiled.frontier_vars.push_back(i);
    } else {
      compiled.existential_vars.push_back(i);
    }
  }
  return compiled;
}

ChaseEngine::ChaseEngine(const Schema* schema, TermArena* arena)
    : schema_(schema), arena_(arena) {
  LCP_CHECK(schema != nullptr && arena != nullptr);
}

namespace {

/// Canonical signature of a trigger's "guarded bag" (§5 blocking): the TGD
/// plus the isomorphism type of all configuration facts whose terms all lie
/// in the trigger's frontier image (constants kept concrete, nulls renamed
/// by first occurrence).
std::string BagSignature(const CompiledTgd& tgd,
                         const std::vector<ChaseTermId>& assignment,
                         const ChaseConfig& config) {
  std::vector<ChaseTermId> frontier_terms;
  for (int v : tgd.frontier_vars) frontier_terms.push_back(assignment[v]);
  std::sort(frontier_terms.begin(), frontier_terms.end());
  frontier_terms.erase(
      std::unique(frontier_terms.begin(), frontier_terms.end()),
      frontier_terms.end());

  auto in_bag = [&](ChaseTermId t) {
    return TermArena::IsConstant(t) ||
           std::binary_search(frontier_terms.begin(), frontier_terms.end(), t);
  };
  std::unordered_map<ChaseTermId, int> canon;
  std::vector<std::string> fact_sigs;
  for (const Fact& fact : config.facts()) {
    bool local = true;
    for (ChaseTermId t : fact.terms) {
      if (!in_bag(t)) {
        local = false;
        break;
      }
    }
    if (!local) continue;
    std::ostringstream os;
    os << fact.relation << ":";
    for (ChaseTermId t : fact.terms) {
      if (TermArena::IsConstant(t)) {
        os << "c" << t << ",";
      } else {
        auto [it, inserted] = canon.emplace(t, static_cast<int>(canon.size()));
        os << "n" << it->second << ",";
      }
    }
    fact_sigs.push_back(os.str());
  }
  std::sort(fact_sigs.begin(), fact_sigs.end());
  return StrCat(tgd.source->name, "|", StrJoin(fact_sigs, ";"));
}

struct Trigger {
  int tgd_index;
  std::vector<ChaseTermId> assignment;
};

}  // namespace

Result<ChaseStats> ChaseEngine::Run(const std::vector<CompiledTgd>& tgds,
                                    const ChaseOptions& options,
                                    ChaseConfig& config) {
  ChaseStats stats;
  std::unordered_set<std::string> fired_bags;
  bool progress = true;
  while (progress) {
    progress = false;
    ++stats.rounds;
    for (size_t t = 0; t < tgds.size(); ++t) {
      const CompiledTgd& tgd = tgds[t];
      // Collect the current triggers first: firing mutates the config, which
      // would invalidate the enumeration.
      std::vector<Trigger> triggers;
      std::vector<ChaseTermId> assignment(tgd.vars.size(), kUnboundTerm);
      EnumerateHomomorphisms(
          tgd.body, config, assignment,
          [&](const std::vector<ChaseTermId>& full) {
            // Restricted chase: skip if the head already has a witness.
            std::vector<ChaseTermId> head_assignment(full);
            for (int v : tgd.existential_vars) {
              head_assignment[v] = kUnboundTerm;
            }
            if (!HasHomomorphism(tgd.head, config, head_assignment)) {
              triggers.push_back(
                  Trigger{static_cast<int>(t), full});
            }
            return true;
          });
      for (Trigger& trigger : triggers) {
        // Re-check: an earlier firing in this round may have satisfied it.
        std::vector<ChaseTermId> head_assignment(trigger.assignment);
        for (int v : tgd.existential_vars) head_assignment[v] = kUnboundTerm;
        if (HasHomomorphism(tgd.head, config, head_assignment)) continue;

        // Depth accounting: new nulls live one level below the deepest
        // frontier term.
        int frontier_depth = 0;
        bool all_frontier_deep_nulls = !tgd.frontier_vars.empty();
        for (int v : tgd.frontier_vars) {
          ChaseTermId term = trigger.assignment[v];
          frontier_depth = std::max(frontier_depth, arena_->DepthOf(term));
          if (!TermArena::IsNull(term) || arena_->DepthOf(term) == 0) {
            all_frontier_deep_nulls = false;
          }
        }
        if (!tgd.existential_vars.empty() && options.max_null_depth >= 0 &&
            frontier_depth + 1 > options.max_null_depth) {
          ++stats.depth_capped_triggers;
          continue;
        }
        if (options.use_guarded_blocking && all_frontier_deep_nulls &&
            !tgd.existential_vars.empty()) {
          std::string sig = BagSignature(tgd, trigger.assignment, config);
          if (!fired_bags.insert(sig).second) {
            ++stats.blocked_triggers;
            continue;
          }
        }

        if (stats.firings >= options.max_firings) {
          if (options.fail_on_firing_cap) {
            return ResourceExhaustedError(
                StrCat("chase exceeded ", options.max_firings, " firings"));
          }
          stats.reached_fixpoint = false;
          return stats;
        }

        // Fire: invent nulls for the existential variables, add head facts.
        for (int v : tgd.existential_vars) {
          trigger.assignment[v] =
              arena_->NewNull(tgd.vars.name(v), frontier_depth + 1);
        }
        ++stats.firings;
        for (const PatternAtom& atom : tgd.head) {
          Fact fact;
          fact.relation = atom.relation;
          fact.terms.reserve(atom.slots.size());
          for (const auto& slot : atom.slots) {
            fact.terms.push_back(slot.is_variable
                                     ? trigger.assignment[slot.var_index]
                                     : slot.term);
          }
          if (config.Add(fact)) ++stats.facts_added;
        }
        progress = true;
      }
    }
  }
  stats.reached_fixpoint = true;
  return stats;
}

Result<ChaseStats> ChaseEngine::Run(const std::vector<Tgd>& tgds,
                                    const ChaseOptions& options,
                                    ChaseConfig& config) {
  std::vector<CompiledTgd> compiled;
  compiled.reserve(tgds.size());
  for (const Tgd& tgd : tgds) compiled.push_back(CompileTgd(tgd, *arena_));
  return Run(compiled, options, config);
}

CanonicalDatabase BuildCanonicalDatabase(const ConjunctiveQuery& query,
                                         TermArena& arena) {
  CanonicalDatabase canonical;
  for (const std::string& var : query.AllVariables()) {
    canonical.var_to_term.emplace(var, arena.NewNull(var, 0));
  }
  for (const Atom& atom : query.atoms) {
    Fact fact;
    fact.relation = atom.relation;
    fact.terms.reserve(atom.terms.size());
    for (const Term& term : atom.terms) {
      fact.terms.push_back(term.is_variable()
                               ? canonical.var_to_term.at(term.var())
                               : arena.InternConstant(term.constant()));
    }
    canonical.config.Add(fact);
  }
  return canonical;
}

}  // namespace lcp
