#include "lcp/chase/term_arena.h"

#include <utility>

namespace lcp {

ChaseTermId TermArena::InternConstant(const Value& value) {
  auto it = constant_ids_.find(value);
  if (it != constant_ids_.end()) return it->second;
  ChaseTermId id = static_cast<ChaseTermId>(-1 - constants_.size());
  constants_.push_back(value);
  constant_ids_.emplace(value, id);
  return id;
}

ChaseTermId TermArena::NewNull(const std::string& base_name, int depth) {
  ChaseTermId id = static_cast<ChaseTermId>(null_names_.size());
  null_names_.push_back(base_name + "_" + std::to_string(id));
  null_depths_.push_back(depth);
  return id;
}

std::string TermArena::DisplayName(ChaseTermId id) const {
  if (IsConstant(id)) return ConstantOf(id).ToString();
  LCP_CHECK(IsNull(id) && static_cast<size_t>(id) < null_names_.size());
  return null_names_[static_cast<size_t>(id)];
}

}  // namespace lcp
