#include "lcp/chase/term_arena.h"

#include <utility>

namespace lcp {

ChaseTermId TermArena::InternConstant(const Value& value) {
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  auto it = constant_ids_.find(value);
  if (it != constant_ids_.end()) return it->second;
  size_t index = constants_.Append(value);
  ChaseTermId id = static_cast<ChaseTermId>(-1 - index);
  constant_ids_.emplace(value, id);
  return id;
}

ChaseTermId TermArena::NewNull(const std::string& base_name, int depth) {
  std::lock_guard<std::mutex> lock(mutate_mutex_);
  ChaseTermId id = static_cast<ChaseTermId>(nulls_.size());
  NullInfo info;
  info.name = base_name + "_" + std::to_string(id);
  info.depth = depth;
  nulls_.Append(std::move(info));
  return id;
}

std::string TermArena::DisplayName(ChaseTermId id) const {
  if (IsConstant(id)) return ConstantOf(id).ToString();
  LCP_CHECK(IsNull(id) && static_cast<size_t>(id) < nulls_.size());
  return nulls_[static_cast<size_t>(id)].name;
}

}  // namespace lcp
