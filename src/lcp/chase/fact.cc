#include "lcp/chase/fact.h"

#include <sstream>

namespace lcp {

std::string FactToString(const Fact& fact, const Schema& schema,
                         const TermArena& arena) {
  std::ostringstream os;
  os << schema.relation(fact.relation).name << "(";
  for (size_t i = 0; i < fact.terms.size(); ++i) {
    if (i > 0) os << ", ";
    os << arena.DisplayName(fact.terms[i]);
  }
  os << ")";
  return os.str();
}

}  // namespace lcp
