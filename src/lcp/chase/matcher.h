#ifndef LCP_CHASE_MATCHER_H_
#define LCP_CHASE_MATCHER_H_

#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "lcp/chase/config.h"
#include "lcp/chase/term_arena.h"
#include "lcp/logic/atom.h"

namespace lcp {

/// A compiled atom: each argument slot is either a variable index into a
/// shared assignment vector, or a fixed chase term (an interned constant).
struct PatternAtom {
  RelationId relation = kInvalidRelation;
  /// slot >= 0: variable index; slot < 0: fixed term, stored separately.
  struct Slot {
    bool is_variable = false;
    int var_index = -1;
    ChaseTermId term = kUnboundTerm;
  };
  std::vector<Slot> slots;
};

/// Maps variable names to dense indices shared across a set of compiled
/// patterns (e.g. the body and head of one TGD).
class VariableTable {
 public:
  /// Returns the index of `name`, creating it if new.
  int IndexOf(const std::string& name);
  int size() const { return static_cast<int>(names_.size()); }
  const std::string& name(int index) const { return names_[index]; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> index_;
};

/// Compiles `atoms` against `vars` (extending it) and `arena` (interning
/// constants).
std::vector<PatternAtom> CompileAtoms(const std::vector<Atom>& atoms,
                                      VariableTable& vars, TermArena& arena);

/// Half-open range of fact indexes an atom is allowed to match. Used by the
/// semi-naïve chase to pin one body atom to the delta (facts added last
/// round) and restrict the others to older strata.
struct FactWindow {
  int begin = 0;
  int end = std::numeric_limits<int>::max();
};

/// Counters filled in during homomorphism enumeration (perf accounting).
struct MatchStats {
  /// Positional-index buckets probed while seeding candidate lists.
  long long index_probes = 0;
  /// Candidate facts scanned by the unification loop.
  long long candidates_scanned = 0;
};

/// Optional knobs for EnumerateHomomorphisms.
struct MatchOptions {
  /// Per-atom fact windows, indexed like `atoms`; nullptr = unconstrained.
  const FactWindow* windows = nullptr;
  /// If non-null, incremented (never reset) during enumeration.
  MatchStats* stats = nullptr;
};

/// Enumerates homomorphisms of `atoms` into `config`, extending the partial
/// `assignment` (kUnboundTerm marks free slots). Invokes `on_match` with the
/// full assignment for each; returning false stops enumeration. The
/// assignment vector is restored to its input state afterwards.
///
/// Atom order is chosen greedily at each step: every pending atom's cheapest
/// candidate list — the smallest positional-index bucket over its bound
/// slots, clipped to its fact window — is sized, and the atom with the
/// fewest candidates is matched next. This seeds the backtracking join from
/// index lookups instead of full relation scans.
void EnumerateHomomorphisms(
    const std::vector<PatternAtom>& atoms, const ChaseConfig& config,
    std::vector<ChaseTermId>& assignment,
    const std::function<bool(const std::vector<ChaseTermId>&)>& on_match,
    const MatchOptions& options = {});

/// Convenience: true if at least one homomorphism extends `assignment`.
bool HasHomomorphism(const std::vector<PatternAtom>& atoms,
                     const ChaseConfig& config,
                     std::vector<ChaseTermId> assignment,
                     const MatchOptions& options = {});

}  // namespace lcp

#endif  // LCP_CHASE_MATCHER_H_
