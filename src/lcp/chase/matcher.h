#ifndef LCP_CHASE_MATCHER_H_
#define LCP_CHASE_MATCHER_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lcp/chase/config.h"
#include "lcp/chase/term_arena.h"
#include "lcp/logic/atom.h"

namespace lcp {

/// A compiled atom: each argument slot is either a variable index into a
/// shared assignment vector, or a fixed chase term (an interned constant).
struct PatternAtom {
  RelationId relation = kInvalidRelation;
  /// slot >= 0: variable index; slot < 0: fixed term, stored separately.
  struct Slot {
    bool is_variable = false;
    int var_index = -1;
    ChaseTermId term = kUnboundTerm;
  };
  std::vector<Slot> slots;
};

/// Maps variable names to dense indices shared across a set of compiled
/// patterns (e.g. the body and head of one TGD).
class VariableTable {
 public:
  /// Returns the index of `name`, creating it if new.
  int IndexOf(const std::string& name);
  int size() const { return static_cast<int>(names_.size()); }
  const std::string& name(int index) const { return names_[index]; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> index_;
};

/// Compiles `atoms` against `vars` (extending it) and `arena` (interning
/// constants).
std::vector<PatternAtom> CompileAtoms(const std::vector<Atom>& atoms,
                                      VariableTable& vars, TermArena& arena);

/// Enumerates homomorphisms of `atoms` into `config`, extending the partial
/// `assignment` (kUnboundTerm marks free slots). Invokes `on_match` with the
/// full assignment for each; returning false stops enumeration. The
/// assignment vector is restored to its input state afterwards.
///
/// Atom order is chosen greedily at each step (most-bound atom first), which
/// keeps the backtracking join cheap on the star/chain shapes that dominate
/// chase workloads.
void EnumerateHomomorphisms(
    const std::vector<PatternAtom>& atoms, const ChaseConfig& config,
    std::vector<ChaseTermId>& assignment,
    const std::function<bool(const std::vector<ChaseTermId>&)>& on_match);

/// Convenience: true if at least one homomorphism extends `assignment`.
bool HasHomomorphism(const std::vector<PatternAtom>& atoms,
                     const ChaseConfig& config,
                     std::vector<ChaseTermId> assignment);

}  // namespace lcp

#endif  // LCP_CHASE_MATCHER_H_
