#include "lcp/chase/matcher.h"

#include <algorithm>

namespace lcp {

int VariableTable::IndexOf(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  int idx = static_cast<int>(names_.size());
  names_.push_back(name);
  index_.emplace(name, idx);
  return idx;
}

std::vector<PatternAtom> CompileAtoms(const std::vector<Atom>& atoms,
                                      VariableTable& vars, TermArena& arena) {
  std::vector<PatternAtom> compiled;
  compiled.reserve(atoms.size());
  for (const Atom& atom : atoms) {
    PatternAtom pattern;
    pattern.relation = atom.relation;
    pattern.slots.reserve(atom.terms.size());
    for (const Term& term : atom.terms) {
      PatternAtom::Slot slot;
      if (term.is_variable()) {
        slot.is_variable = true;
        slot.var_index = vars.IndexOf(term.var());
      } else {
        slot.is_variable = false;
        slot.term = arena.InternConstant(term.constant());
      }
      pattern.slots.push_back(slot);
    }
    compiled.push_back(std::move(pattern));
  }
  return compiled;
}

namespace {

/// Counts bound slots of `atom` under `assignment` (constants count).
int BoundSlots(const PatternAtom& atom,
               const std::vector<ChaseTermId>& assignment) {
  int bound = 0;
  for (const auto& slot : atom.slots) {
    if (!slot.is_variable || assignment[slot.var_index] != kUnboundTerm) {
      ++bound;
    }
  }
  return bound;
}

bool MatchRecursive(
    const std::vector<PatternAtom>& atoms, std::vector<bool>& done,
    size_t remaining, const ChaseConfig& config,
    std::vector<ChaseTermId>& assignment,
    const std::function<bool(const std::vector<ChaseTermId>&)>& on_match) {
  if (remaining == 0) {
    return on_match(assignment);
  }
  // Pick the pending atom with the most bound slots; break ties toward the
  // smaller relation extension.
  int best = -1;
  int best_bound = -1;
  size_t best_extension = 0;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (done[i]) continue;
    int bound = BoundSlots(atoms[i], assignment);
    size_t extension = config.FactsOf(atoms[i].relation).size();
    if (bound > best_bound ||
        (bound == best_bound && extension < best_extension)) {
      best = static_cast<int>(i);
      best_bound = bound;
      best_extension = extension;
    }
  }
  const PatternAtom& atom = atoms[best];
  done[best] = true;
  bool keep_going = true;
  for (int fact_idx : config.FactsOf(atom.relation)) {
    const Fact& fact = config.facts()[fact_idx];
    // Try to unify `fact` with `atom` under the current assignment.
    std::vector<int> newly_bound;
    bool consistent = true;
    for (size_t s = 0; s < atom.slots.size() && consistent; ++s) {
      const auto& slot = atom.slots[s];
      ChaseTermId fact_term = fact.terms[s];
      if (!slot.is_variable) {
        consistent = (slot.term == fact_term);
      } else if (assignment[slot.var_index] != kUnboundTerm) {
        consistent = (assignment[slot.var_index] == fact_term);
      } else {
        assignment[slot.var_index] = fact_term;
        newly_bound.push_back(slot.var_index);
      }
    }
    if (consistent) {
      keep_going = MatchRecursive(atoms, done, remaining - 1, config,
                                  assignment, on_match);
    }
    for (int v : newly_bound) assignment[v] = kUnboundTerm;
    if (!keep_going) break;
  }
  done[best] = false;
  return keep_going;
}

}  // namespace

void EnumerateHomomorphisms(
    const std::vector<PatternAtom>& atoms, const ChaseConfig& config,
    std::vector<ChaseTermId>& assignment,
    const std::function<bool(const std::vector<ChaseTermId>&)>& on_match) {
  if (atoms.empty()) {
    on_match(assignment);
    return;
  }
  std::vector<bool> done(atoms.size(), false);
  MatchRecursive(atoms, done, atoms.size(), config, assignment, on_match);
}

bool HasHomomorphism(const std::vector<PatternAtom>& atoms,
                     const ChaseConfig& config,
                     std::vector<ChaseTermId> assignment) {
  bool found = false;
  EnumerateHomomorphisms(atoms, config, assignment,
                         [&](const std::vector<ChaseTermId>&) {
                           found = true;
                           return false;
                         });
  return found;
}

}  // namespace lcp
