#include "lcp/chase/matcher.h"

#include <algorithm>

namespace lcp {

int VariableTable::IndexOf(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  int idx = static_cast<int>(names_.size());
  names_.push_back(name);
  index_.emplace(name, idx);
  return idx;
}

std::vector<PatternAtom> CompileAtoms(const std::vector<Atom>& atoms,
                                      VariableTable& vars, TermArena& arena) {
  std::vector<PatternAtom> compiled;
  compiled.reserve(atoms.size());
  for (const Atom& atom : atoms) {
    PatternAtom pattern;
    pattern.relation = atom.relation;
    pattern.slots.reserve(atom.terms.size());
    for (const Term& term : atom.terms) {
      PatternAtom::Slot slot;
      if (term.is_variable()) {
        slot.is_variable = true;
        slot.var_index = vars.IndexOf(term.var());
      } else {
        slot.is_variable = false;
        slot.term = arena.InternConstant(term.constant());
      }
      pattern.slots.push_back(slot);
    }
    compiled.push_back(std::move(pattern));
  }
  return compiled;
}

namespace {

/// A contiguous run of candidate fact indexes (ascending).
struct CandidateSpan {
  const int* begin = nullptr;
  const int* end = nullptr;
  size_t size() const { return static_cast<size_t>(end - begin); }
};

/// The cheapest candidate list for `atom` under `assignment`: the smallest
/// positional-index bucket over its bound slots (constants and bound
/// variables), falling back to the relation extension when nothing is bound,
/// clipped to the atom's fact window. Index buckets and relation extensions
/// are ascending, so window clipping is a binary search.
CandidateSpan BestCandidates(const PatternAtom& atom, int atom_index,
                             const ChaseConfig& config,
                             const std::vector<ChaseTermId>& assignment,
                             const MatchOptions& options) {
  const std::vector<int>* list = &config.FactsOf(atom.relation);
  // Small extensions are cheaper to scan than to index-probe (and probing
  // would force lazy index maintenance on small, copy-heavy configs).
  if (list->size() > ChaseConfig::kIndexProbeThreshold) {
    for (size_t s = 0; s < atom.slots.size() && !list->empty(); ++s) {
      const auto& slot = atom.slots[s];
      ChaseTermId bound =
          slot.is_variable ? assignment[slot.var_index] : slot.term;
      if (bound == kUnboundTerm) continue;
      const std::vector<int>& bucket =
          config.FactsWith(atom.relation, static_cast<int>(s), bound);
      if (options.stats != nullptr) ++options.stats->index_probes;
      if (bucket.size() < list->size()) list = &bucket;
    }
  }
  CandidateSpan span{list->data(), list->data() + list->size()};
  if (options.windows != nullptr) {
    const FactWindow& window = options.windows[atom_index];
    span.begin = std::lower_bound(span.begin, span.end, window.begin);
    span.end = std::lower_bound(span.begin, span.end, window.end);
  }
  return span;
}

bool MatchRecursive(
    const std::vector<PatternAtom>& atoms, std::vector<bool>& done,
    size_t remaining, const ChaseConfig& config,
    std::vector<ChaseTermId>& assignment,
    const std::function<bool(const std::vector<ChaseTermId>&)>& on_match,
    const MatchOptions& options) {
  if (remaining == 0) {
    return on_match(assignment);
  }
  // Pick the pending atom with the fewest candidates.
  int best = -1;
  CandidateSpan best_span;
  size_t best_size = std::numeric_limits<size_t>::max();
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (done[i]) continue;
    CandidateSpan span = BestCandidates(atoms[i], static_cast<int>(i), config,
                                        assignment, options);
    if (span.size() < best_size) {
      best = static_cast<int>(i);
      best_span = span;
      best_size = span.size();
      if (best_size == 0) break;  // No match possible: prune immediately.
    }
  }
  const PatternAtom& atom = atoms[best];
  done[best] = true;
  bool keep_going = true;
  std::vector<int> newly_bound;
  for (const int* it = best_span.begin; it != best_span.end; ++it) {
    const Fact& fact = config.facts()[*it];
    if (options.stats != nullptr) ++options.stats->candidates_scanned;
    // Try to unify `fact` with `atom` under the current assignment.
    newly_bound.clear();
    bool consistent = true;
    for (size_t s = 0; s < atom.slots.size() && consistent; ++s) {
      const auto& slot = atom.slots[s];
      ChaseTermId fact_term = fact.terms[s];
      if (!slot.is_variable) {
        consistent = (slot.term == fact_term);
      } else if (assignment[slot.var_index] != kUnboundTerm) {
        consistent = (assignment[slot.var_index] == fact_term);
      } else {
        assignment[slot.var_index] = fact_term;
        newly_bound.push_back(slot.var_index);
      }
    }
    if (consistent) {
      keep_going = MatchRecursive(atoms, done, remaining - 1, config,
                                  assignment, on_match, options);
    }
    for (int v : newly_bound) assignment[v] = kUnboundTerm;
    if (!keep_going) break;
  }
  done[best] = false;
  return keep_going;
}

}  // namespace

void EnumerateHomomorphisms(
    const std::vector<PatternAtom>& atoms, const ChaseConfig& config,
    std::vector<ChaseTermId>& assignment,
    const std::function<bool(const std::vector<ChaseTermId>&)>& on_match,
    const MatchOptions& options) {
  if (atoms.empty()) {
    on_match(assignment);
    return;
  }
  std::vector<bool> done(atoms.size(), false);
  MatchRecursive(atoms, done, atoms.size(), config, assignment, on_match,
                 options);
}

bool HasHomomorphism(const std::vector<PatternAtom>& atoms,
                     const ChaseConfig& config,
                     std::vector<ChaseTermId> assignment,
                     const MatchOptions& options) {
  bool found = false;
  EnumerateHomomorphisms(
      atoms, config, assignment,
      [&](const std::vector<ChaseTermId>&) {
        found = true;
        return false;
      },
      options);
  return found;
}

}  // namespace lcp
