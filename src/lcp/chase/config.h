#ifndef LCP_CHASE_CONFIG_H_
#define LCP_CHASE_CONFIG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "lcp/chase/fact.h"
#include "lcp/chase/term_arena.h"
#include "lcp/logic/ids.h"

namespace lcp {

/// A chase configuration (§4): a duplicate-free set of facts, with
/// insertion order preserved (facts are a proof log) and per-relation plus
/// positional indexes for homomorphism search. Configurations are value
/// types: search nodes copy them when branching.
///
/// Thread-safety contract: mutation (Add, copy/move assignment *onto* this
/// object) requires exclusive access, like any value type. Const reads —
/// including the lazily index-building probes FactsWith / TermsAt — are safe
/// from any number of threads concurrently: the catch-up is guarded by a
/// double-checked lock (an acquire/release watermark plus a build mutex), so
/// a fully-indexed configuration costs one atomic load per probe and a
/// shared configuration can serve concurrent read-only planners. Call
/// PrepareForConcurrentReads() after the last Add to pay the build once,
/// outside any contended section.
class ChaseConfig {
 public:
  ChaseConfig() = default;
  /// Copies transfer the facts but not the positional index: it is lazily
  /// rebuilt (incrementally) on first probe, so branching a search node
  /// stays as cheap as the fact set itself.
  ChaseConfig(const ChaseConfig& other)
      : facts_(other.facts_),
        index_(other.index_),
        by_relation_(other.by_relation_) {}
  ChaseConfig& operator=(const ChaseConfig& other) {
    if (this != &other) {
      facts_ = other.facts_;
      index_ = other.index_;
      by_relation_ = other.by_relation_;
      by_position_.clear();
      terms_at_.clear();
      indexed_up_to_.store(0, std::memory_order_relaxed);
    }
    return *this;
  }
  ChaseConfig(ChaseConfig&& other) noexcept
      : facts_(std::move(other.facts_)),
        index_(std::move(other.index_)),
        by_relation_(std::move(other.by_relation_)),
        by_position_(std::move(other.by_position_)),
        terms_at_(std::move(other.terms_at_)),
        indexed_up_to_(other.indexed_up_to_.load(std::memory_order_relaxed)) {
    other.indexed_up_to_.store(0, std::memory_order_relaxed);
  }
  ChaseConfig& operator=(ChaseConfig&& other) noexcept {
    if (this != &other) {
      facts_ = std::move(other.facts_);
      index_ = std::move(other.index_);
      by_relation_ = std::move(other.by_relation_);
      by_position_ = std::move(other.by_position_);
      terms_at_ = std::move(other.terms_at_);
      indexed_up_to_.store(
          other.indexed_up_to_.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      other.indexed_up_to_.store(0, std::memory_order_relaxed);
    }
    return *this;
  }

  /// Adds a fact; returns true if it was new.
  bool Add(const Fact& fact);
  bool Contains(const Fact& fact) const {
    return index_.find(fact) != index_.end();
  }

  size_t size() const { return facts_.size(); }
  const std::vector<Fact>& facts() const { return facts_; }

  /// Indexes into facts() of the facts over `relation`, ascending.
  const std::vector<int>& FactsOf(RelationId relation) const;

  /// Indexes into facts() of the facts over `relation` whose term at
  /// `position` equals `term`, ascending. A single hash probe into the
  /// positional index (catching it up with recent Adds first); the matcher
  /// seeds unification from the smallest such candidate list.
  const std::vector<int>& FactsWith(RelationId relation, int position,
                                    ChaseTermId term) const;

  /// All distinct terms occurring in facts over `relation` at `position`,
  /// in first-occurrence order. An index read; O(1) plus the result size.
  const std::vector<ChaseTermId>& TermsAt(RelationId relation,
                                          int position) const;

  /// Extensions smaller than this are cheaper to scan than to index-probe;
  /// the matcher (and other index users) fall back to FactsOf below it.
  static constexpr size_t kIndexProbeThreshold = 8;

  /// Pre-build hook: brings the positional index fully up to date so that
  /// subsequent concurrent const probes never contend on the build mutex.
  /// Idempotent; call after the last Add when the configuration is about to
  /// be shared read-only across threads.
  void PrepareForConcurrentReads() const { EnsureIndexed(); }

  /// Multi-line dump for debugging/exploration logs.
  std::string ToString(const Schema& schema, const TermArena& arena) const;

 private:
  /// Key of the positional index: one bucket per (relation, position, term)
  /// triple that occurs in the configuration.
  struct PosTermKey {
    RelationId relation;
    int32_t position;
    ChaseTermId term;
    friend bool operator==(const PosTermKey& a, const PosTermKey& b) {
      return a.relation == b.relation && a.position == b.position &&
             a.term == b.term;
    }
  };
  struct PosTermKeyHash {
    size_t operator()(const PosTermKey& k) const {
      uint64_t h = static_cast<uint32_t>(k.relation) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(k.position)) +
           0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(k.term)) +
           0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  /// Key of the distinct-terms index: one entry per (relation, position).
  struct PosKey {
    RelationId relation;
    int32_t position;
    friend bool operator==(const PosKey& a, const PosKey& b) {
      return a.relation == b.relation && a.position == b.position;
    }
  };
  struct PosKeyHash {
    size_t operator()(const PosKey& k) const {
      uint64_t h = static_cast<uint32_t>(k.relation) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(k.position)) +
           0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  /// Fast-path check + slow-path catch-up: returns once the positional index
  /// covers every fact. One acquire load when already indexed; otherwise
  /// takes index_mutex_, re-checks, and appends facts
  /// [indexed_up_to_, facts_.size()).
  void EnsureIndexed() const;
  /// The catch-up body; must be called with index_mutex_ held.
  void CatchUpPositionalIndexLocked() const;

  std::vector<Fact> facts_;
  std::unordered_set<Fact, FactHash> index_;
  std::unordered_map<RelationId, std::vector<int>> by_relation_;
  /// Positional index, built lazily: facts_[0, indexed_up_to_) are indexed.
  /// Mutable so that const probes can catch up after Adds and copies.
  /// Concurrency: readers that observe indexed_up_to_ == facts_.size() with
  /// acquire order see every map write the builder published with its
  /// release store; writers only mutate under index_mutex_ (and mutation of
  /// facts_ itself is exclusive by the value-type contract above).
  mutable std::unordered_map<PosTermKey, std::vector<int>, PosTermKeyHash>
      by_position_;
  mutable std::unordered_map<PosKey, std::vector<ChaseTermId>, PosKeyHash>
      terms_at_;
  mutable std::atomic<size_t> indexed_up_to_{0};
  mutable std::mutex index_mutex_;
};

}  // namespace lcp

#endif  // LCP_CHASE_CONFIG_H_
