#ifndef LCP_CHASE_CONFIG_H_
#define LCP_CHASE_CONFIG_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lcp/chase/fact.h"
#include "lcp/chase/term_arena.h"
#include "lcp/logic/ids.h"

namespace lcp {

/// A chase configuration (§4): a duplicate-free set of facts, with
/// insertion order preserved (facts are a proof log) and a per-relation
/// index for homomorphism search. Configurations are value types: search
/// nodes copy them when branching.
class ChaseConfig {
 public:
  ChaseConfig() = default;

  /// Adds a fact; returns true if it was new.
  bool Add(const Fact& fact);
  bool Contains(const Fact& fact) const {
    return index_.find(fact) != index_.end();
  }

  size_t size() const { return facts_.size(); }
  const std::vector<Fact>& facts() const { return facts_; }

  /// Indexes into facts() of the facts over `relation`.
  const std::vector<int>& FactsOf(RelationId relation) const;

  /// All distinct terms occurring in facts over `relation` at `position`.
  /// (No index is kept; linear in the relation's facts.)
  std::vector<ChaseTermId> TermsAt(RelationId relation, int position) const;

  /// Multi-line dump for debugging/exploration logs.
  std::string ToString(const Schema& schema, const TermArena& arena) const;

 private:
  std::vector<Fact> facts_;
  std::unordered_set<Fact, FactHash> index_;
  std::unordered_map<RelationId, std::vector<int>> by_relation_;
};

}  // namespace lcp

#endif  // LCP_CHASE_CONFIG_H_
