#ifndef LCP_CHASE_CONFIG_H_
#define LCP_CHASE_CONFIG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lcp/chase/fact.h"
#include "lcp/chase/term_arena.h"
#include "lcp/logic/ids.h"

namespace lcp {

/// A chase configuration (§4): a duplicate-free set of facts, with
/// insertion order preserved (facts are a proof log) and per-relation plus
/// positional indexes for homomorphism search. Configurations are value
/// types: search nodes copy them when branching.
class ChaseConfig {
 public:
  ChaseConfig() = default;
  /// Copies transfer the facts but not the positional index: it is lazily
  /// rebuilt (incrementally) on first probe, so branching a search node
  /// stays as cheap as the fact set itself.
  ChaseConfig(const ChaseConfig& other)
      : facts_(other.facts_),
        index_(other.index_),
        by_relation_(other.by_relation_) {}
  ChaseConfig& operator=(const ChaseConfig& other) {
    if (this != &other) {
      facts_ = other.facts_;
      index_ = other.index_;
      by_relation_ = other.by_relation_;
      by_position_.clear();
      terms_at_.clear();
      indexed_up_to_ = 0;
    }
    return *this;
  }
  ChaseConfig(ChaseConfig&&) = default;
  ChaseConfig& operator=(ChaseConfig&&) = default;

  /// Adds a fact; returns true if it was new.
  bool Add(const Fact& fact);
  bool Contains(const Fact& fact) const {
    return index_.find(fact) != index_.end();
  }

  size_t size() const { return facts_.size(); }
  const std::vector<Fact>& facts() const { return facts_; }

  /// Indexes into facts() of the facts over `relation`, ascending.
  const std::vector<int>& FactsOf(RelationId relation) const;

  /// Indexes into facts() of the facts over `relation` whose term at
  /// `position` equals `term`, ascending. A single hash probe into the
  /// positional index (catching it up with recent Adds first); the matcher
  /// seeds unification from the smallest such candidate list.
  const std::vector<int>& FactsWith(RelationId relation, int position,
                                    ChaseTermId term) const;

  /// All distinct terms occurring in facts over `relation` at `position`,
  /// in first-occurrence order. An index read; O(1) plus the result size.
  const std::vector<ChaseTermId>& TermsAt(RelationId relation,
                                          int position) const;

  /// Extensions smaller than this are cheaper to scan than to index-probe;
  /// the matcher (and other index users) fall back to FactsOf below it.
  static constexpr size_t kIndexProbeThreshold = 8;

  /// Multi-line dump for debugging/exploration logs.
  std::string ToString(const Schema& schema, const TermArena& arena) const;

 private:
  /// Key of the positional index: one bucket per (relation, position, term)
  /// triple that occurs in the configuration.
  struct PosTermKey {
    RelationId relation;
    int32_t position;
    ChaseTermId term;
    friend bool operator==(const PosTermKey& a, const PosTermKey& b) {
      return a.relation == b.relation && a.position == b.position &&
             a.term == b.term;
    }
  };
  struct PosTermKeyHash {
    size_t operator()(const PosTermKey& k) const {
      uint64_t h = static_cast<uint32_t>(k.relation) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(k.position)) +
           0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(k.term)) +
           0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  /// Key of the distinct-terms index: one entry per (relation, position).
  struct PosKey {
    RelationId relation;
    int32_t position;
    friend bool operator==(const PosKey& a, const PosKey& b) {
      return a.relation == b.relation && a.position == b.position;
    }
  };
  struct PosKeyHash {
    size_t operator()(const PosKey& k) const {
      uint64_t h = static_cast<uint32_t>(k.relation) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(k.position)) +
           0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  /// Appends facts [indexed_up_to_, facts_.size()) to the positional index.
  void CatchUpPositionalIndex() const;

  std::vector<Fact> facts_;
  std::unordered_set<Fact, FactHash> index_;
  std::unordered_map<RelationId, std::vector<int>> by_relation_;
  /// Positional index, built lazily: facts_[0, indexed_up_to_) are indexed.
  /// Mutable so that const probes can catch up after Adds and copies.
  mutable std::unordered_map<PosTermKey, std::vector<int>, PosTermKeyHash>
      by_position_;
  mutable std::unordered_map<PosKey, std::vector<ChaseTermId>, PosKeyHash>
      terms_at_;
  mutable size_t indexed_up_to_ = 0;
};

}  // namespace lcp

#endif  // LCP_CHASE_CONFIG_H_
