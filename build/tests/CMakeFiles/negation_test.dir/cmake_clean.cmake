file(REMOVE_RECURSE
  "CMakeFiles/negation_test.dir/negation_test.cc.o"
  "CMakeFiles/negation_test.dir/negation_test.cc.o.d"
  "negation_test"
  "negation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/negation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
