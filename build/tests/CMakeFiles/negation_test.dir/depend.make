# Empty dependencies file for negation_test.
# This may be replaced when dependencies are built.
