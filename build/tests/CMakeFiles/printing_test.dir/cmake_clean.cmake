file(REMOVE_RECURSE
  "CMakeFiles/printing_test.dir/printing_test.cc.o"
  "CMakeFiles/printing_test.dir/printing_test.cc.o.d"
  "printing_test"
  "printing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
