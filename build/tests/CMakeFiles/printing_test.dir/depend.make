# Empty dependencies file for printing_test.
# This may be replaced when dependencies are built.
