# Empty compiler generated dependencies file for accessible_test.
# This may be replaced when dependencies are built.
