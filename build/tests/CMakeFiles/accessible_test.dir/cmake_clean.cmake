file(REMOVE_RECURSE
  "CMakeFiles/accessible_test.dir/accessible_test.cc.o"
  "CMakeFiles/accessible_test.dir/accessible_test.cc.o.d"
  "accessible_test"
  "accessible_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accessible_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
