file(REMOVE_RECURSE
  "CMakeFiles/plan_extra_test.dir/plan_extra_test.cc.o"
  "CMakeFiles/plan_extra_test.dir/plan_extra_test.cc.o.d"
  "plan_extra_test"
  "plan_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
