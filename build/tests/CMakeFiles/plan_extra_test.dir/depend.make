# Empty dependencies file for plan_extra_test.
# This may be replaced when dependencies are built.
