file(REMOVE_RECURSE
  "CMakeFiles/search_detail_test.dir/search_detail_test.cc.o"
  "CMakeFiles/search_detail_test.dir/search_detail_test.cc.o.d"
  "search_detail_test"
  "search_detail_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
