# Empty dependencies file for search_detail_test.
# This may be replaced when dependencies are built.
