# Empty compiler generated dependencies file for ra_test.
# This may be replaced when dependencies are built.
