file(REMOVE_RECURSE
  "CMakeFiles/ra_test.dir/ra_test.cc.o"
  "CMakeFiles/ra_test.dir/ra_test.cc.o.d"
  "ra_test"
  "ra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
