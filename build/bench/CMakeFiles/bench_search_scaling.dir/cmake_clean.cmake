file(REMOVE_RECURSE
  "CMakeFiles/bench_search_scaling.dir/bench_search_scaling.cc.o"
  "CMakeFiles/bench_search_scaling.dir/bench_search_scaling.cc.o.d"
  "bench_search_scaling"
  "bench_search_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
