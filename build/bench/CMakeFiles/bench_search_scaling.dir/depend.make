# Empty dependencies file for bench_search_scaling.
# This may be replaced when dependencies are built.
