file(REMOVE_RECURSE
  "CMakeFiles/bench_cost_models.dir/bench_cost_models.cc.o"
  "CMakeFiles/bench_cost_models.dir/bench_cost_models.cc.o.d"
  "bench_cost_models"
  "bench_cost_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
