file(REMOVE_RECURSE
  "CMakeFiles/bench_interpolation.dir/bench_interpolation.cc.o"
  "CMakeFiles/bench_interpolation.dir/bench_interpolation.cc.o.d"
  "bench_interpolation"
  "bench_interpolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
