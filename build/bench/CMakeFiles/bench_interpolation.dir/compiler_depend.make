# Empty compiler generated dependencies file for bench_interpolation.
# This may be replaced when dependencies are built.
