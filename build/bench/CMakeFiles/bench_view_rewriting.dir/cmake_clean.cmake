file(REMOVE_RECURSE
  "CMakeFiles/bench_view_rewriting.dir/bench_view_rewriting.cc.o"
  "CMakeFiles/bench_view_rewriting.dir/bench_view_rewriting.cc.o.d"
  "bench_view_rewriting"
  "bench_view_rewriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_view_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
