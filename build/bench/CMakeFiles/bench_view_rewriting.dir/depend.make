# Empty dependencies file for bench_view_rewriting.
# This may be replaced when dependencies are built.
