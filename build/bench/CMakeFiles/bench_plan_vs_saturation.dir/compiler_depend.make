# Empty compiler generated dependencies file for bench_plan_vs_saturation.
# This may be replaced when dependencies are built.
