file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_vs_saturation.dir/bench_plan_vs_saturation.cc.o"
  "CMakeFiles/bench_plan_vs_saturation.dir/bench_plan_vs_saturation.cc.o.d"
  "bench_plan_vs_saturation"
  "bench_plan_vs_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_vs_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
