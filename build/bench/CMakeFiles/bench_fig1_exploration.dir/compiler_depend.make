# Empty compiler generated dependencies file for bench_fig1_exploration.
# This may be replaced when dependencies are built.
