file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_exploration.dir/bench_fig1_exploration.cc.o"
  "CMakeFiles/bench_fig1_exploration.dir/bench_fig1_exploration.cc.o.d"
  "bench_fig1_exploration"
  "bench_fig1_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
