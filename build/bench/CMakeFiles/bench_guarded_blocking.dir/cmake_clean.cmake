file(REMOVE_RECURSE
  "CMakeFiles/bench_guarded_blocking.dir/bench_guarded_blocking.cc.o"
  "CMakeFiles/bench_guarded_blocking.dir/bench_guarded_blocking.cc.o.d"
  "bench_guarded_blocking"
  "bench_guarded_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_guarded_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
