# Empty dependencies file for bench_guarded_blocking.
# This may be replaced when dependencies are built.
