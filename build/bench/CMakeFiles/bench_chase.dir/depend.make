# Empty dependencies file for bench_chase.
# This may be replaced when dependencies are built.
