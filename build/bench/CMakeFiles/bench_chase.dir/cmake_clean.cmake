file(REMOVE_RECURSE
  "CMakeFiles/bench_chase.dir/bench_chase.cc.o"
  "CMakeFiles/bench_chase.dir/bench_chase.cc.o.d"
  "bench_chase"
  "bench_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
