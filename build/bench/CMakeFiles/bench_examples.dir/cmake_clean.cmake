file(REMOVE_RECURSE
  "CMakeFiles/bench_examples.dir/bench_examples.cc.o"
  "CMakeFiles/bench_examples.dir/bench_examples.cc.o.d"
  "bench_examples"
  "bench_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
