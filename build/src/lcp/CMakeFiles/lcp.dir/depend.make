# Empty dependencies file for lcp.
# This may be replaced when dependencies are built.
