file(REMOVE_RECURSE
  "liblcp.a"
)
