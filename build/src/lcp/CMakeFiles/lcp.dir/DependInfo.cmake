
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lcp/accessible/accessible_schema.cc" "src/lcp/CMakeFiles/lcp.dir/accessible/accessible_schema.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/accessible/accessible_schema.cc.o.d"
  "/root/repo/src/lcp/base/status.cc" "src/lcp/CMakeFiles/lcp.dir/base/status.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/base/status.cc.o.d"
  "/root/repo/src/lcp/base/strings.cc" "src/lcp/CMakeFiles/lcp.dir/base/strings.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/base/strings.cc.o.d"
  "/root/repo/src/lcp/baseline/bucket.cc" "src/lcp/CMakeFiles/lcp.dir/baseline/bucket.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/baseline/bucket.cc.o.d"
  "/root/repo/src/lcp/baseline/saturation.cc" "src/lcp/CMakeFiles/lcp.dir/baseline/saturation.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/baseline/saturation.cc.o.d"
  "/root/repo/src/lcp/chase/config.cc" "src/lcp/CMakeFiles/lcp.dir/chase/config.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/chase/config.cc.o.d"
  "/root/repo/src/lcp/chase/engine.cc" "src/lcp/CMakeFiles/lcp.dir/chase/engine.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/chase/engine.cc.o.d"
  "/root/repo/src/lcp/chase/fact.cc" "src/lcp/CMakeFiles/lcp.dir/chase/fact.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/chase/fact.cc.o.d"
  "/root/repo/src/lcp/chase/matcher.cc" "src/lcp/CMakeFiles/lcp.dir/chase/matcher.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/chase/matcher.cc.o.d"
  "/root/repo/src/lcp/chase/term_arena.cc" "src/lcp/CMakeFiles/lcp.dir/chase/term_arena.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/chase/term_arena.cc.o.d"
  "/root/repo/src/lcp/data/generator.cc" "src/lcp/CMakeFiles/lcp.dir/data/generator.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/data/generator.cc.o.d"
  "/root/repo/src/lcp/data/instance.cc" "src/lcp/CMakeFiles/lcp.dir/data/instance.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/data/instance.cc.o.d"
  "/root/repo/src/lcp/data/query_eval.cc" "src/lcp/CMakeFiles/lcp.dir/data/query_eval.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/data/query_eval.cc.o.d"
  "/root/repo/src/lcp/interp/encode.cc" "src/lcp/CMakeFiles/lcp.dir/interp/encode.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/interp/encode.cc.o.d"
  "/root/repo/src/lcp/interp/formula.cc" "src/lcp/CMakeFiles/lcp.dir/interp/formula.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/interp/formula.cc.o.d"
  "/root/repo/src/lcp/interp/model_check.cc" "src/lcp/CMakeFiles/lcp.dir/interp/model_check.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/interp/model_check.cc.o.d"
  "/root/repo/src/lcp/interp/tableau.cc" "src/lcp/CMakeFiles/lcp.dir/interp/tableau.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/interp/tableau.cc.o.d"
  "/root/repo/src/lcp/logic/atom.cc" "src/lcp/CMakeFiles/lcp.dir/logic/atom.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/logic/atom.cc.o.d"
  "/root/repo/src/lcp/logic/conjunctive_query.cc" "src/lcp/CMakeFiles/lcp.dir/logic/conjunctive_query.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/logic/conjunctive_query.cc.o.d"
  "/root/repo/src/lcp/logic/containment.cc" "src/lcp/CMakeFiles/lcp.dir/logic/containment.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/logic/containment.cc.o.d"
  "/root/repo/src/lcp/logic/term.cc" "src/lcp/CMakeFiles/lcp.dir/logic/term.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/logic/term.cc.o.d"
  "/root/repo/src/lcp/logic/tgd.cc" "src/lcp/CMakeFiles/lcp.dir/logic/tgd.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/logic/tgd.cc.o.d"
  "/root/repo/src/lcp/logic/value.cc" "src/lcp/CMakeFiles/lcp.dir/logic/value.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/logic/value.cc.o.d"
  "/root/repo/src/lcp/plan/cardinality_cost.cc" "src/lcp/CMakeFiles/lcp.dir/plan/cardinality_cost.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/plan/cardinality_cost.cc.o.d"
  "/root/repo/src/lcp/plan/cost.cc" "src/lcp/CMakeFiles/lcp.dir/plan/cost.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/plan/cost.cc.o.d"
  "/root/repo/src/lcp/plan/plan.cc" "src/lcp/CMakeFiles/lcp.dir/plan/plan.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/plan/plan.cc.o.d"
  "/root/repo/src/lcp/plan/validate.cc" "src/lcp/CMakeFiles/lcp.dir/plan/validate.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/plan/validate.cc.o.d"
  "/root/repo/src/lcp/planner/executable_query.cc" "src/lcp/CMakeFiles/lcp.dir/planner/executable_query.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/planner/executable_query.cc.o.d"
  "/root/repo/src/lcp/planner/negation_search.cc" "src/lcp/CMakeFiles/lcp.dir/planner/negation_search.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/planner/negation_search.cc.o.d"
  "/root/repo/src/lcp/planner/proof_search.cc" "src/lcp/CMakeFiles/lcp.dir/planner/proof_search.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/planner/proof_search.cc.o.d"
  "/root/repo/src/lcp/ra/eval.cc" "src/lcp/CMakeFiles/lcp.dir/ra/eval.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/ra/eval.cc.o.d"
  "/root/repo/src/lcp/ra/expr.cc" "src/lcp/CMakeFiles/lcp.dir/ra/expr.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/ra/expr.cc.o.d"
  "/root/repo/src/lcp/ra/table.cc" "src/lcp/CMakeFiles/lcp.dir/ra/table.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/ra/table.cc.o.d"
  "/root/repo/src/lcp/runtime/executor.cc" "src/lcp/CMakeFiles/lcp.dir/runtime/executor.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/runtime/executor.cc.o.d"
  "/root/repo/src/lcp/runtime/source.cc" "src/lcp/CMakeFiles/lcp.dir/runtime/source.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/runtime/source.cc.o.d"
  "/root/repo/src/lcp/schema/parser.cc" "src/lcp/CMakeFiles/lcp.dir/schema/parser.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/schema/parser.cc.o.d"
  "/root/repo/src/lcp/schema/schema.cc" "src/lcp/CMakeFiles/lcp.dir/schema/schema.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/schema/schema.cc.o.d"
  "/root/repo/src/lcp/workload/scenarios.cc" "src/lcp/CMakeFiles/lcp.dir/workload/scenarios.cc.o" "gcc" "src/lcp/CMakeFiles/lcp.dir/workload/scenarios.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
