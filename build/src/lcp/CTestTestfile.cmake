# CMake generated Testfile for 
# Source directory: /root/repo/src/lcp
# Build directory: /root/repo/build/src/lcp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
