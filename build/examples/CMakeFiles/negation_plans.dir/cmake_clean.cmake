file(REMOVE_RECURSE
  "CMakeFiles/negation_plans.dir/negation_plans.cpp.o"
  "CMakeFiles/negation_plans.dir/negation_plans.cpp.o.d"
  "negation_plans"
  "negation_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/negation_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
