# Empty dependencies file for negation_plans.
# This may be replaced when dependencies are built.
