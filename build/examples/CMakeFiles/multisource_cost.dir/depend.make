# Empty dependencies file for multisource_cost.
# This may be replaced when dependencies are built.
