file(REMOVE_RECURSE
  "CMakeFiles/multisource_cost.dir/multisource_cost.cpp.o"
  "CMakeFiles/multisource_cost.dir/multisource_cost.cpp.o.d"
  "multisource_cost"
  "multisource_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multisource_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
