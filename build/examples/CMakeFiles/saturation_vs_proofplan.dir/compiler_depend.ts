# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for saturation_vs_proofplan.
