file(REMOVE_RECURSE
  "CMakeFiles/saturation_vs_proofplan.dir/saturation_vs_proofplan.cpp.o"
  "CMakeFiles/saturation_vs_proofplan.dir/saturation_vs_proofplan.cpp.o.d"
  "saturation_vs_proofplan"
  "saturation_vs_proofplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saturation_vs_proofplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
