# Empty compiler generated dependencies file for saturation_vs_proofplan.
# This may be replaced when dependencies are built.
