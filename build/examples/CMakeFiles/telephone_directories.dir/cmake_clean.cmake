file(REMOVE_RECURSE
  "CMakeFiles/telephone_directories.dir/telephone_directories.cpp.o"
  "CMakeFiles/telephone_directories.dir/telephone_directories.cpp.o.d"
  "telephone_directories"
  "telephone_directories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telephone_directories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
