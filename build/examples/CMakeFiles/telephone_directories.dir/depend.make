# Empty dependencies file for telephone_directories.
# This may be replaced when dependencies are built.
