file(REMOVE_RECURSE
  "CMakeFiles/view_rewriting.dir/view_rewriting.cpp.o"
  "CMakeFiles/view_rewriting.dir/view_rewriting.cpp.o.d"
  "view_rewriting"
  "view_rewriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
