# Empty compiler generated dependencies file for view_rewriting.
# This may be replaced when dependencies are built.
