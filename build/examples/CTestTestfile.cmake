# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_telephone_directories "/root/repo/build/examples/telephone_directories")
set_tests_properties(example_telephone_directories PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multisource_cost "/root/repo/build/examples/multisource_cost")
set_tests_properties(example_multisource_cost PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_view_rewriting "/root/repo/build/examples/view_rewriting")
set_tests_properties(example_view_rewriting PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_saturation_vs_proofplan "/root/repo/build/examples/saturation_vs_proofplan")
set_tests_properties(example_saturation_vs_proofplan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_negation_plans "/root/repo/build/examples/negation_plans")
set_tests_properties(example_negation_plans PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
