#!/usr/bin/env bash
# Runs the benchmark suite and records the perf trajectory as JSON.
#
# Usage: bench/run_benches.sh [BUILD_DIR] [OUT_JSON] [RUNTIME_OUT_JSON] \
#                             [SERVICE_OUT_JSON] [PARALLEL_OUT_JSON] \
#                             [RUNTIME_EXEC_OUT_JSON] [PLAN_OPT_OUT_JSON]
#   BUILD_DIR         cmake build directory containing the bench binaries
#                     (default: build)
#   OUT_JSON          output path for the chase google-benchmark JSON report
#                     (default: BENCH_chase.json in the current directory)
#   RUNTIME_OUT_JSON  output path for the runtime-resilience JSON report
#                     (default: BENCH_runtime.json in the current directory)
#   SERVICE_OUT_JSON  output path for the query-service JSON report
#                     (default: BENCH_service.json in the current directory)
#   PARALLEL_OUT_JSON output path for the parallel proof-search JSON report
#                     (default: BENCH_parallel.json in the current directory)
#   RUNTIME_EXEC_OUT_JSON
#                     output path for the execution-engine JSON report
#                     (default: BENCH_runtime_exec.json in the current
#                     directory)
#   PLAN_OPT_OUT_JSON output path for the plan-optimizer JSON report
#                     (default: BENCH_plan_opt.json in the current directory)
#
# BENCH_chase.json includes BM_ChaseTransitiveClosure in both evaluation
# modes (seminaive:0 = naive oracle, seminaive:1 = semi-naïve delta chase),
# the headline naive-vs-delta comparison.
#
# BENCH_runtime.json covers the fault-tolerant executor: the historic direct
# path (BM_ExecuteDirect) vs FaultInjectingSource at fault rates 0 / 1% /
# 10% (BM_ExecuteFaultInjected, rate_permille arg). The rate-0 run vs the
# direct run is the zero-fault overhead of the retry machinery, printed
# below when python3 is available (target: <= 5%).
#
# BENCH_service.json covers the concurrent query service: per-request plan
# cost cold (cache disabled) vs warm (BM_ServicePlanCold / BM_ServicePlanWarm
# — the cache amortization ratio, target >= 10x), end-to-end throughput
# with 1 / 2 / 4 workers (BM_ServiceThroughput, thread-scaling of the
# serving path), and overload behavior against a bounded queue
# (BM_ServiceOverload: goodput, shed rate, and the p50/p99 latency of a
# rejected Submit — the fast-fail path should stay in the microseconds).
# It also covers the PR-9 robustness features: BM_ServiceCoalescedBurst
# (duplicate-heavy burst with single-flight coalescing off vs on; the
# summary prints the searches-per-burst collapse) and
# BM_ServiceSnapshotRestart (cold restart vs restart warmed from a plan-
# cache snapshot; the summary prints the restart speedup and confirms a
# warmed restart re-proves nothing).
# BENCH_runtime_exec.json covers the execution engines on a join-heavy
# plan: BM_ExecuteRowOracle (tuple-at-a-time) vs BM_ExecuteVectorized
# (columnar batches) at growing instance sizes. Both produce bit-identical
# results; the summary prints the vectorized speedup per size (target:
# >= 5x on the larger sizes). BM_ExecuteMorsel sweeps the morsel-driven
# parallel engine (workers x size, DESIGN.md §13); its summary prints the
# worker-scaling curve next to `host_cores` — on a 1-core runner the curve
# measures scheduling overhead, not speedup.
#
# BENCH_parallel.json covers the work-stealing parallel proof search
# (BM_ParallelSearch, workers 1/2/4/8 on the hard chain workload). Every row
# records its `parallelism` counter plus `host_cores`; the summary prints
# the speedup curve next to the host core count — speedups past the core
# count measure contention, not parallelism.
#
# BENCH_plan_opt.json covers the plan-IR optimizer (DESIGN.md §11):
# BM_Optimize* records cost-before/after and per-pass cost deltas on the
# access-redundant and join-heavy plan families (the CSE+DCE cost reduction
# on the redundant family is the headline number), and BM_Exec*Unopt/Opt
# pairs measure the end-to-end execution-time delta the optimized plan buys
# on the vectorized engine.
#
# All summaries are printed below.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_chase.json}"
RUNTIME_OUT_JSON="${3:-BENCH_runtime.json}"
SERVICE_OUT_JSON="${4:-BENCH_service.json}"
PARALLEL_OUT_JSON="${5:-BENCH_parallel.json}"
RUNTIME_EXEC_OUT_JSON="${6:-BENCH_runtime_exec.json}"
PLAN_OPT_OUT_JSON="${7:-BENCH_plan_opt.json}"
CHASE_BIN="${BUILD_DIR}/bench/bench_chase"
RUNTIME_BIN="${BUILD_DIR}/bench/bench_runtime_faults"
SERVICE_BIN="${BUILD_DIR}/bench/bench_service"
PARALLEL_BIN="${BUILD_DIR}/bench/bench_parallel_search"
RUNTIME_EXEC_BIN="${BUILD_DIR}/bench/bench_runtime"
PLAN_OPT_BIN="${BUILD_DIR}/bench/bench_plan_opt"

for bin in "${CHASE_BIN}" "${RUNTIME_BIN}" "${SERVICE_BIN}" \
           "${PARALLEL_BIN}" "${RUNTIME_EXEC_BIN}" "${PLAN_OPT_BIN}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not found; build first:" >&2
    echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
    exit 1
  fi
done

# Refuse to record a perf trajectory from a debug build of this repo:
# debug timings are not comparable to the committed Release numbers. The
# check reads CMAKE_BUILD_TYPE from the build tree's cache. Set
# LCP_ALLOW_DEBUG_BENCH=1 to override for local debugging; do not commit
# the resulting JSONs. (The separate library_build_type field in the JSON
# context describes how the *google-benchmark library* was compiled — a
# distro debug library only adds harness overhead; a warning for that is
# printed after the first report below.)
CMAKE_BUILD_TYPE=""
if [[ -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  CMAKE_BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
    "${BUILD_DIR}/CMakeCache.txt" | head -1)"
fi
case "${CMAKE_BUILD_TYPE}" in
  Release|RelWithDebInfo|MinSizeRel) ;;
  *)
    if [[ "${LCP_ALLOW_DEBUG_BENCH:-0}" != "1" ]]; then
      echo "error: ${BUILD_DIR} is not a Release build" >&2
      echo "  (CMAKE_BUILD_TYPE='${CMAKE_BUILD_TYPE}'); rebuild with" >&2
      echo "  cmake -B ${BUILD_DIR} -S . -DCMAKE_BUILD_TYPE=Release" >&2
      echo "  or set LCP_ALLOW_DEBUG_BENCH=1 to run anyway (do not" >&2
      echo "  commit the resulting JSONs)" >&2
      exit 1
    fi
    echo "warning: recording benchmarks from a non-Release build" \
      "(CMAKE_BUILD_TYPE='${CMAKE_BUILD_TYPE}')" >&2
    ;;
esac

"${CHASE_BIN}" \
  --benchmark_out="${OUT_JSON}" \
  --benchmark_out_format=json \
  ${BENCH_MIN_TIME:+--benchmark_min_time="${BENCH_MIN_TIME}"}

echo "wrote ${OUT_JSON}"

# Loud warning when the google-benchmark *library* itself is a debug build
# (context.library_build_type): the harness adds overhead it wouldn't in a
# release library. Nothing this script can fix — the library ships with the
# machine — but readers of the committed JSONs should know.
if grep -q '"library_build_type": *"debug"' "${OUT_JSON}"; then
  echo "warning: the google-benchmark LIBRARY on this host is a debug" >&2
  echo "  build (library_build_type=debug in the JSON context); absolute" >&2
  echo "  timings include extra harness overhead" >&2
fi

"${RUNTIME_BIN}" \
  --benchmark_out="${RUNTIME_OUT_JSON}" \
  --benchmark_out_format=json \
  ${BENCH_MIN_TIME:+--benchmark_min_time="${BENCH_MIN_TIME}"}

echo "wrote ${RUNTIME_OUT_JSON}"

# Zero-fault overhead: wrapped source at rate 0 vs the direct path, per
# instance size. Informational only — CI perf gates belong in a dedicated
# environment, not a shared runner.
if command -v python3 >/dev/null 2>&1; then
  python3 - "${RUNTIME_OUT_JSON}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
direct, wrapped0 = {}, {}
for b in report.get("benchmarks", []):
    name = b.get("name", "")
    if b.get("run_type") == "aggregate":
        continue
    if name.startswith("BM_ExecuteDirect/"):
        n = name.split("n:")[1].split("/")[0]
        direct[n] = b["real_time"]
    elif name.startswith("BM_ExecuteFaultInjected/") and "rate_permille:0" in name:
        n = name.split("n:")[1].split("/")[0]
        wrapped0[n] = b["real_time"]
for n in sorted(direct, key=int):
    if n in wrapped0 and direct[n] > 0:
        pct = 100.0 * (wrapped0[n] / direct[n] - 1.0)
        print(f"zero-fault overhead (n={n}): {pct:+.1f}% "
              f"(direct {direct[n]:.0f}ns -> wrapped {wrapped0[n]:.0f}ns)")
EOF
fi

"${SERVICE_BIN}" \
  --benchmark_out="${SERVICE_OUT_JSON}" \
  --benchmark_out_format=json \
  ${BENCH_MIN_TIME:+--benchmark_min_time="${BENCH_MIN_TIME}"}

echo "wrote ${SERVICE_OUT_JSON}"

# Cache amortization (cold/warm plan cost) and worker scaling
# (items_per_second by worker count). Informational, like the overhead
# number above.
if command -v python3 >/dev/null 2>&1; then
  python3 - "${SERVICE_OUT_JSON}" <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
cold = warm = overload = None
scaling, coalesce, restart = {}, {}, {}
for b in report.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    name = b.get("name", "")
    if name.startswith("BM_ServicePlanCold"):
        cold = b.get("items_per_second")
    elif name.startswith("BM_ServicePlanWarm"):
        warm = b.get("items_per_second")
    elif name.startswith("BM_ServiceThroughput/") and "items_per_second" in b:
        workers = name.split("workers:")[1].split("/")[0]
        scaling[workers] = b["items_per_second"]
    elif name.startswith("BM_ServiceOverload"):
        overload = b
    elif name.startswith("BM_ServiceCoalescedBurst/"):
        coalesce[name.split("coalescing:")[1].split("/")[0]] = b
    elif name.startswith("BM_ServiceSnapshotRestart/"):
        restart[name.split("warm:")[1].split("/")[0]] = b
if cold and warm and cold > 0:
    print(f"plan-cache amortization: {warm / cold:.1f}x "
          f"(cold {cold:,.0f} -> warm {warm:,.0f} plans/s)")
to_ms = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
if "0" in coalesce and "1" in coalesce:
    off, on = coalesce["0"], coalesce["1"]
    ratio = off["real_time"] / on["real_time"] if on["real_time"] else 0.0
    off_ms = off["real_time"] * to_ms.get(off.get("time_unit", "ns"), 1e-6)
    on_ms = on["real_time"] * to_ms.get(on.get("time_unit", "ns"), 1e-6)
    print(f"coalesced burst: searches/burst "
          f"{off.get('searches_per_burst', 0):.1f} -> "
          f"{on.get('searches_per_burst', 0):.1f} "
          f"({on.get('followers_per_burst', 0):.1f} followers rode along), "
          f"{off_ms:.1f}ms -> {on_ms:.1f}ms per burst ({ratio:.1f}x)")
if "0" in restart and "1" in restart:
    cold_r, warm_r = restart["0"], restart["1"]
    ratio = (cold_r["real_time"] / warm_r["real_time"]
             if warm_r["real_time"] else 0.0)
    cold_us = cold_r["real_time"] * to_ms.get(
        cold_r.get("time_unit", "ns"), 1e-6) * 1e3
    warm_us = warm_r["real_time"] * to_ms.get(
        warm_r.get("time_unit", "ns"), 1e-6) * 1e3
    print(f"snapshot-warmed restart: {cold_us:.0f}us cold -> "
          f"{warm_us:.0f}us warm ({ratio:.1f}x); re-proofs/restart "
          f"{cold_r.get('searches_per_restart', 0):.1f} -> "
          f"{warm_r.get('searches_per_restart', 0):.1f} "
          f"({warm_r.get('entries_loaded_per_restart', 0):.1f} plans loaded "
          "from snapshot)")
if overload is not None:
    print(f"overload (4x capacity burst): "
          f"goodput {overload.get('goodput', 0):,.0f} req/s, "
          f"shed rate {100 * overload.get('shed_rate', 0):.0f}%, "
          f"reject latency p50 {overload.get('reject_p50_us', 0):.1f}us / "
          f"p99 {overload.get('reject_p99_us', 0):.1f}us")
for w in sorted(scaling, key=int):
    base = scaling.get("1")
    speedup = f", {scaling[w] / base:.2f}x vs 1 worker" if base else ""
    print(f"throughput ({w} workers): {scaling[w]:,.0f} req/s{speedup}")
cores = os.cpu_count() or 1
if scaling and cores < max(int(w) for w in scaling):
    print(f"note: host has {cores} core(s); worker scaling beyond that "
          "measures contention, not speedup")
EOF
fi

"${PARALLEL_BIN}" \
  --benchmark_out="${PARALLEL_OUT_JSON}" \
  --benchmark_out_format=json \
  ${BENCH_MIN_TIME:+--benchmark_min_time="${BENCH_MIN_TIME}"}

echo "wrote ${PARALLEL_OUT_JSON}"

# Parallel proof-search speedup curve. Each row carries its `parallelism`
# counter; the host core count is printed alongside because a 1/2-core
# runner cannot show real speedup (the >= 2.5x @ 4 workers target assumes a
# >= 4-core host). Informational, like the other summaries.
if command -v python3 >/dev/null 2>&1; then
  python3 - "${PARALLEL_OUT_JSON}" <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
rows = {}
for b in report.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    if b.get("name", "").startswith("BM_ParallelSearch/"):
        rows[int(b["parallelism"])] = b
cores = os.cpu_count() or 1
print(f"parallel search (host cores: {cores}):")
base = rows.get(1, {}).get("real_time")
to_ms = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
for p in sorted(rows):
    t = rows[p]["real_time"]
    ms = t * to_ms.get(rows[p].get("time_unit", "ns"), 1e-6)
    speedup = f"{base / t:.2f}x" if base and t else "n/a"
    print(f"  parallelism={p}: {ms:.1f} ms, speedup {speedup} "
          f"(expanded {rows[p].get('nodes_expanded', 0):,.0f})")
if cores < 4:
    print("  note: host has fewer than 4 cores; the speedup column "
          "measures scheduling overhead, not parallel capacity")
EOF
fi

"${RUNTIME_EXEC_BIN}" \
  --benchmark_out="${RUNTIME_EXEC_OUT_JSON}" \
  --benchmark_out_format=json \
  ${BENCH_MIN_TIME:+--benchmark_min_time="${BENCH_MIN_TIME}"}

echo "wrote ${RUNTIME_EXEC_OUT_JSON}"

# Vectorized-vs-row speedup on the join-heavy execution plan, per instance
# size, plus the morsel-parallel worker-scaling curve. Informational, like
# the other summaries.
if command -v python3 >/dev/null 2>&1; then
  python3 - "${RUNTIME_EXEC_OUT_JSON}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
row, vec, morsel = {}, {}, {}
for b in report.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    name = b.get("name", "")
    if "n:" not in name:
        continue
    n = name.split("n:")[1].split("/")[0]
    if name.startswith("BM_ExecuteRowOracle/"):
        row[n] = b["real_time"]
    elif name.startswith("BM_ExecuteVectorized/"):
        vec[n] = b["real_time"]
    elif name.startswith("BM_ExecuteMorsel/"):
        workers = name.split("workers:")[1].split("/")[0]
        morsel[(n, int(workers))] = b
for n in sorted(row, key=int):
    if n in vec and vec[n] > 0:
        print(f"vectorized speedup (n={n}): {row[n] / vec[n]:.1f}x "
              f"(row {row[n]:.2f}ms -> vectorized {vec[n]:.2f}ms)")
if morsel:
    cores = int(next(iter(morsel.values())).get("host_cores", 0))
    print(f"morsel-parallel execution (host cores: {cores}):")
    for n in sorted({k[0] for k in morsel}, key=int):
        base = morsel.get((n, 1), {}).get("real_time")
        for w in sorted(w for (nn, w) in morsel if nn == n):
            b = morsel[(n, w)]
            t = b["real_time"]
            speedup = f"{base / t:.2f}x" if base and t else "n/a"
            print(f"  n={n} workers={w}: {t:.2f} ms, speedup {speedup} "
                  f"(morsels {b.get('morsels', 0):,.0f}, "
                  f"build partitions {b.get('build_partitions', 0):,.0f})")
    if cores <= 1:
        print("  note: 1-core host; the worker sweep measures scheduling "
              "overhead, not parallel speedup")
EOF
fi

"${PLAN_OPT_BIN}" \
  --benchmark_out="${PLAN_OPT_OUT_JSON}" \
  --benchmark_out_format=json \
  ${BENCH_MIN_TIME:+--benchmark_min_time="${BENCH_MIN_TIME}"}

echo "wrote ${PLAN_OPT_OUT_JSON}"

# Plan-optimizer effect: cost reduction per family (with per-pass
# attribution) and the execution-time delta of the optimized plan.
# Informational, like the other summaries.
if command -v python3 >/dev/null 2>&1; then
  python3 - "${PLAN_OPT_OUT_JSON}" <<'SUMEOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
opt_rows, exec_rows = {}, {}
for b in report.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    name = b.get("name", "")
    if name.startswith("BM_Optimize"):
        opt_rows[name] = b
    elif name.startswith("BM_Exec"):
        exec_rows[name] = b
for name in sorted(opt_rows):
    b = opt_rows[name]
    before, after = b.get("cost_before", 0), b.get("cost_after", 0)
    pct = 100.0 * (1.0 - after / before) if before else 0.0
    deltas = ", ".join(
        f"{p}={b[p + '_cost_delta']:g}"
        for p in ("cse", "pushdown", "dce", "join_reorder")
        if b.get(p + "_cost_delta"))
    attribution = f" [{deltas}]" if deltas else ""
    print(f"{name}: cost {before:g} -> {after:g} (-{pct:.0f}%), "
          f"access commands {b.get('access_before', 0):g} -> "
          f"{b.get('access_after', 0):g}{attribution}")
to_ms = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
for family in ("AccessRedundant", "JoinHeavy"):
    unopt = exec_rows.get(f"BM_Exec{family}Unopt")
    opt = exec_rows.get(f"BM_Exec{family}Opt")
    if not unopt or not opt or not opt["real_time"]:
        continue
    scale = to_ms.get(unopt.get("time_unit", "ns"), 1e-6)
    print(f"exec time ({family}): "
          f"{unopt['real_time'] * scale:.2f}ms unoptimized -> "
          f"{opt['real_time'] * scale:.2f}ms optimized "
          f"({unopt['real_time'] / opt['real_time']:.2f}x)")
SUMEOF
fi
