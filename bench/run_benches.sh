#!/usr/bin/env bash
# Runs the chase benchmark suite and records the perf trajectory as JSON.
#
# Usage: bench/run_benches.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR  cmake build directory containing bench/bench_chase
#              (default: build)
#   OUT_JSON   output path for the google-benchmark JSON report
#              (default: BENCH_chase.json in the current directory)
#
# The report includes BM_ChaseTransitiveClosure in both evaluation modes
# (seminaive:0 = naive oracle, seminaive:1 = semi-naïve delta chase), which
# is the headline naive-vs-delta comparison.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_chase.json}"
BENCH_BIN="${BUILD_DIR}/bench/bench_chase"

if [[ ! -x "${BENCH_BIN}" ]]; then
  echo "error: ${BENCH_BIN} not found; build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

"${BENCH_BIN}" \
  --benchmark_out="${OUT_JSON}" \
  --benchmark_out_format=json \
  ${BENCH_MIN_TIME:+--benchmark_min_time="${BENCH_MIN_TIME}"}

echo "wrote ${OUT_JSON}"
