// Experiment E3 (Figure 1 + Example 5): cost-guided exploration of the
// three-directory scenario. Reproduces:
//   - the Figure 1 exploration order under the paper's "free accesses
//     first" heuristic (n0 → n1 → n2 → n3 → n4-success, then backtracking),
//   - the dominance-pruning of the reordered node n''' ("no better than
//     n2"),
//   - the cost sweep: which plan wins under different per-method costs.
// Timing of the search itself is measured with google-benchmark.

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/planner/proof_search.h"
#include "lcp/workload/scenarios.h"

namespace {

using namespace lcp;

SearchOutcome RunSearch(const double costs[3], bool prune_cost,
                        bool prune_dom, bool log) {
  Scenario scenario = MakeMultiSourceScenario(3, costs, 1.0).value();
  AccessibleSchema accessible =
      AccessibleSchema::Build(*scenario.schema, AccessibleVariant::kStandard)
          .value();
  SimpleCostFunction cost(scenario.schema.get());
  ProofSearch search(&accessible, &cost);
  SearchOptions options;
  options.max_access_commands = 4;
  options.prune_by_cost = prune_cost;
  options.prune_by_dominance = prune_dom;
  options.candidate_order = CandidateOrder::kFreeAccessFirst;
  options.collect_exploration_log = log;
  options.keep_all_plans = true;
  return search.Run(scenario.query, options).value();
}

void BM_Fig1Search(benchmark::State& state) {
  const double costs[3] = {1.0, 1.0, 1.0};
  for (auto _ : state) {
    SearchOutcome outcome =
        RunSearch(costs, state.range(0) != 0, state.range(0) != 0, false);
    benchmark::DoNotOptimize(outcome.best);
  }
}
BENCHMARK(BM_Fig1Search)->Arg(0)->Arg(1)->ArgName("pruning");

void PrintReproduction() {
  std::cout << "\n=== Figure 1 reproduction: exploration under the paper's "
               "heuristic (unit costs, dominance pruning, no cost bound) ===\n";
  const double unit[3] = {1.0, 1.0, 1.0};
  SearchOutcome fig1 = RunSearch(unit, /*prune_cost=*/false,
                                 /*prune_dom=*/true, /*log=*/true);
  for (const std::string& line : fig1.exploration_log) {
    std::cout << "  " << line << "\n";
  }
  std::cout << "first complete proof = the paper's n4 (all three "
               "directories, then the checking access)\n";

  std::cout << "\n=== Cost sweep: winning plan vs directory costs ===\n";
  struct Row {
    const char* label;
    double costs[3];
  };
  const Row rows[] = {
      {"uniform (1,1,1)", {1, 1, 1}},
      {"skewed (5,1,3)", {5, 1, 3}},
      {"source1 cheap (0.5,4,4)", {0.5, 4, 4}},
      {"all expensive (9,9,9)", {9, 9, 9}},
  };
  std::cout << "costs                      | best cost | best plan accesses\n";
  for (const Row& row : rows) {
    SearchOutcome outcome = RunSearch(row.costs, true, true, false);
    std::cout << "  " << row.label;
    for (size_t i = 0; i + strlen(row.label) < 25; ++i) std::cout << ' ';
    std::cout << "| " << outcome.best->cost << "       | ";
    Scenario scenario = MakeMultiSourceScenario(3, row.costs, 1.0).value();
    bool first = true;
    for (const Command& cmd : outcome.best->plan.commands) {
      if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
        std::cout << (first ? "" : " -> ")
                  << scenario.schema->access_method(access->method).name;
        first = false;
      }
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintReproduction();
  return 0;
}
