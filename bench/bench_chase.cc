// Experiment E10: chase-engine throughput — the substrate every other
// experiment rests on. Measures rule firings/second on referential chains
// (linear chase) and fan-out schemas (branching chase), plus the root
// closure of the accessible schema.

#include <benchmark/benchmark.h>

#include <iostream>

#include "lcp/chase/engine.h"
#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace {

using namespace lcp;

void BM_ChaseChain(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  Scenario scenario = MakeChainScenario(length).value();
  for (auto _ : state) {
    TermArena arena;
    ChaseEngine engine(scenario.schema.get(), &arena);
    CanonicalDatabase canonical =
        BuildCanonicalDatabase(scenario.query, arena);
    ChaseOptions options;
    auto stats =
        engine.Run(scenario.schema->constraints(), options, canonical.config);
    benchmark::DoNotOptimize(stats);
    state.counters["firings"] = stats->firings;
  }
}
BENCHMARK(BM_ChaseChain)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->ArgName("len");

void BM_ChaseFanout(benchmark::State& state) {
  // R(x, y) -> S_i(y, z) for i < width: one firing per branch.
  const int width = static_cast<int>(state.range(0));
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  (void)r;
  for (int i = 0; i < width; ++i) {
    schema.AddRelation("S" + std::to_string(i), 2).value();
    schema
        .AddConstraint(ParseTgd(schema, "R(x, y) -> S" + std::to_string(i) +
                                            "(y, z)")
                           .value())
        .ok();
  }
  ConjunctiveQuery query = ParseQuery(schema, "Q(x) :- R(x, y)").value();
  for (auto _ : state) {
    TermArena arena;
    ChaseEngine engine(&schema, &arena);
    CanonicalDatabase canonical = BuildCanonicalDatabase(query, arena);
    ChaseOptions options;
    auto stats = engine.Run(schema.constraints(), options, canonical.config);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_ChaseFanout)->Arg(8)->Arg(64)->Arg(256)->ArgName("width");

void PrintReproduction() {
  std::cout << "\n=== E10: chase engine sanity ===\n";
  Scenario scenario = MakeChainScenario(128).value();
  TermArena arena;
  ChaseEngine engine(scenario.schema.get(), &arena);
  CanonicalDatabase canonical = BuildCanonicalDatabase(scenario.query, arena);
  ChaseOptions options;
  auto stats =
      engine.Run(scenario.schema->constraints(), options, canonical.config);
  std::cout << "chain(128): " << stats->firings << " firings, "
            << stats->facts_added << " facts, fixpoint="
            << (stats->reached_fixpoint ? "yes" : "no") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintReproduction();
  return 0;
}
