// Experiment E10: chase-engine throughput — the substrate every other
// experiment rests on. Measures rule firings/second on referential chains
// (linear chase) and fan-out schemas (branching chase), plus a large
// transitive-closure instance contrasting naive and semi-naïve trigger
// enumeration (the asymptotic win of the delta discipline).

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "lcp/base/strings.h"
#include "lcp/chase/engine.h"
#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace {

using namespace lcp;

void BM_ChaseChain(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  Scenario scenario = MakeChainScenario(length).value();
  for (auto _ : state) {
    TermArena arena;
    ChaseEngine engine(scenario.schema.get(), &arena);
    CanonicalDatabase canonical =
        BuildCanonicalDatabase(scenario.query, arena);
    ChaseOptions options;
    auto stats =
        engine.Run(scenario.schema->constraints(), options, canonical.config);
    benchmark::DoNotOptimize(stats);
    state.counters["firings"] = stats->firings;
  }
}
BENCHMARK(BM_ChaseChain)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->ArgName("len");

void BM_ChaseFanout(benchmark::State& state) {
  // R(x, y) -> S_i(y, z) for i < width: one firing per branch.
  const int width = static_cast<int>(state.range(0));
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  (void)r;
  for (int i = 0; i < width; ++i) {
    schema.AddRelation(StrCat("S", i), 2).value();
    schema
        .AddConstraint(ParseTgd(schema, StrCat("R(x, y) -> S", i, "(y, z)"))
                           .value())
        .ok();
  }
  ConjunctiveQuery query = ParseQuery(schema, "Q(x) :- R(x, y)").value();
  for (auto _ : state) {
    TermArena arena;
    ChaseEngine engine(&schema, &arena);
    CanonicalDatabase canonical = BuildCanonicalDatabase(query, arena);
    ChaseOptions options;
    auto stats = engine.Run(schema.constraints(), options, canonical.config);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_ChaseFanout)->Arg(8)->Arg(64)->Arg(256)->ArgName("width");

/// The large-instance scenario: transitive closure of a path of n edges
/// (n*(n+1)/2 derived facts). The naive oracle re-enumerates the full
/// T ⋈ E join every round (O(n) rounds); the semi-naïve engine only joins
/// last round's delta against the positional index.
struct TcInstance {
  Schema schema;
  RelationId e = kInvalidRelation;
};

TcInstance MakeTcInstance() {
  TcInstance tc;
  tc.e = tc.schema.AddRelation("E", 2).value();
  tc.schema.AddRelation("T", 2).value();
  tc.schema.AddConstraint(ParseTgd(tc.schema, "E(x, y) -> T(x, y)").value())
      .ok();
  tc.schema
      .AddConstraint(
          ParseTgd(tc.schema, "T(x, y) & E(y, z) -> T(x, z)").value())
      .ok();
  return tc;
}

void SeedPath(int n, const TcInstance& tc, TermArena& arena,
              ChaseConfig& config) {
  for (int i = 0; i < n; ++i) {
    config.Add(Fact(tc.e, {arena.InternConstant(Value::Int(i)),
                           arena.InternConstant(Value::Int(i + 1))}));
  }
}

ChaseStats RunTc(const TcInstance& tc, int n, ChaseEvaluationMode mode) {
  TermArena arena;
  ChaseEngine engine(&tc.schema, &arena);
  ChaseConfig config;
  SeedPath(n, tc, arena, config);
  ChaseOptions options;
  options.max_firings = 50000000;
  options.evaluation_mode = mode;
  return engine.Run(tc.schema.constraints(), options, config).value();
}

void BM_ChaseTransitiveClosure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ChaseEvaluationMode mode = state.range(1) != 0
                                       ? ChaseEvaluationMode::kSemiNaive
                                       : ChaseEvaluationMode::kNaive;
  TcInstance tc = MakeTcInstance();
  ChaseStats stats;
  for (auto _ : state) {
    stats = RunTc(tc, n, mode);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["facts"] = stats.facts_added;
  state.counters["triggers"] = stats.triggers_enumerated;
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
}
BENCHMARK(BM_ChaseTransitiveClosure)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({512, 1})
    ->ArgNames({"n", "seminaive"})
    ->Unit(benchmark::kMillisecond);

void PrintReproduction() {
  std::cout << "\n=== E10: chase engine sanity ===\n";
  Scenario scenario = MakeChainScenario(128).value();
  TermArena arena;
  ChaseEngine engine(scenario.schema.get(), &arena);
  CanonicalDatabase canonical = BuildCanonicalDatabase(scenario.query, arena);
  ChaseOptions options;
  auto stats =
      engine.Run(scenario.schema->constraints(), options, canonical.config);
  std::cout << "chain(128): " << stats->firings << " firings, "
            << stats->facts_added << " facts, fixpoint="
            << (stats->reached_fixpoint ? "yes" : "no") << "\n";

  // Large-instance comparison (acceptance target: >= 3x for semi-naïve).
  const int n = 256;
  TcInstance tc = MakeTcInstance();
  auto time_mode = [&](ChaseEvaluationMode mode) {
    auto start = std::chrono::steady_clock::now();
    ChaseStats s = RunTc(tc, n, mode);
    auto elapsed = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    return std::make_pair(elapsed, s);
  };
  auto [naive_ms, naive_stats] = time_mode(ChaseEvaluationMode::kNaive);
  auto [delta_ms, delta_stats] = time_mode(ChaseEvaluationMode::kSemiNaive);
  std::cout << "tc(" << n << ") naive:     " << naive_ms << " ms, "
            << naive_stats.triggers_enumerated << " triggers\n";
  std::cout << "tc(" << n << ") seminaive: " << delta_ms << " ms, "
            << delta_stats.triggers_enumerated << " triggers\n";
  std::cout << "tc(" << n << ") speedup:   " << naive_ms / delta_ms << "x\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintReproduction();
  return 0;
}
