// The plan-IR optimizer (DESIGN.md §11) on its two target plan families:
//
//  - access-redundant: the same free access issued N times and unioned.
//    CSE aliases the copies, DCE deletes them; plan cost drops from
//    2N to 2 and execution stops re-fetching the same relation.
//  - join-heavy: a four-leaf join chain written cartesian-product-first,
//    with a selection left above one scan. Join reorder groups shared
//    attributes, pushdown folds the selection into the access.
//
// BM_Optimize* measures the optimizer's own latency and records
// cost-before/after for the full pipeline plus the per-pass cost deltas as
// counters (the JSON rows run_benches.sh summarizes). BM_Exec* measures
// end-to-end execution time of the unoptimized vs optimized plan on the
// vectorized engine — the delta the optimizer actually buys at runtime.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lcp/plan/opt/pass_manager.h"
#include "lcp/plan/validate.h"
#include "lcp/runtime/executor.h"
#include "lcp/runtime/source.h"

namespace {

using namespace lcp;

/// Schema and instance live behind pointers so Family can move without
/// invalidating the Instance's back-pointer into the schema.
struct Family {
  std::unique_ptr<Schema> schema = std::make_unique<Schema>();
  std::unique_ptr<Instance> instance;
  Plan plan;
};

/// N identical free accesses to R, all unioned together. Everything past
/// the first is redundant by construction.
Family MakeAccessRedundant(int copies, int rows) {
  Family family;
  RelationId r = family.schema->AddRelation("R", 2).value();
  family.schema->AddAccessMethod("free_r", r, {}, 2.0).value();
  family.instance = std::make_unique<Instance>(family.schema.get());
  for (int i = 0; i < rows; ++i) {
    family.instance->AddFact(r, Tuple{Value::Int(i % 97), Value::Int(i)});
  }
  RaExprPtr unioned;
  for (int i = 0; i < copies; ++i) {
    AccessCommand access;
    access.method = 0;
    access.output_table = "t" + std::to_string(i);
    access.output_columns = {{"a", 0}, {"b", 1}};
    family.plan.commands.push_back(std::move(access));
    RaExprPtr scan = RaExpr::TempScan("t" + std::to_string(i));
    unioned = unioned ? RaExpr::Union(std::move(unioned), std::move(scan))
                      : std::move(scan);
  }
  family.plan.commands.push_back(QueryCommand{"all", std::move(unioned)});
  family.plan.output_table = "all";
  family.plan.output_attrs = {"a", "b"};
  return family;
}

/// Four free accesses joined cartesian-product-first — A(a,b) ⋈ B(c,d)
/// shares nothing; the profitable order goes through C(b,c) — plus a
/// selection left above the fourth scan for pushdown to fold.
Family MakeJoinHeavy(int rows) {
  Family family;
  RelationId a = family.schema->AddRelation("A", 2).value();
  RelationId b = family.schema->AddRelation("B", 2).value();
  RelationId c = family.schema->AddRelation("C", 2).value();
  family.schema->AddAccessMethod("free_a", a, {}, 2.0).value();
  family.schema->AddAccessMethod("free_b", b, {}, 2.0).value();
  family.schema->AddAccessMethod("free_c", c, {}, 2.0).value();
  family.instance = std::make_unique<Instance>(family.schema.get());
  for (int i = 0; i < rows; ++i) {
    family.instance->AddFact(a, Tuple{Value::Int(i % 23), Value::Int(i % 17)});
    family.instance->AddFact(b, Tuple{Value::Int(i % 19), Value::Int(i)});
    family.instance->AddFact(c, Tuple{Value::Int(i % 17), Value::Int(i % 19)});
  }

  auto access = [&](AccessMethodId method, const std::string& table,
                    const std::string& x, const std::string& y) {
    AccessCommand cmd;
    cmd.method = method;
    cmd.output_table = table;
    cmd.output_columns = {{x, 0}, {y, 1}};
    family.plan.commands.push_back(std::move(cmd));
  };
  access(0, "ta", "a", "b");
  access(1, "tb", "c", "d");
  access(2, "tc", "b", "c");
  access(0, "tf", "a", "f");  // second access to A, different column names
  family.plan.commands.push_back(QueryCommand{
      "fs", RaExpr::Select(RaExpr::TempScan("tf"),
                           {RaExpr::Condition::AttrEqConst(
                               "f", Value::Int(3))})});
  family.plan.commands.push_back(QueryCommand{
      "out",
      RaExpr::Join(
          RaExpr::Join(
              RaExpr::Join(RaExpr::TempScan("ta"), RaExpr::TempScan("tb")),
              RaExpr::TempScan("tc")),
          RaExpr::TempScan("fs"))});
  family.plan.output_table = "out";
  family.plan.output_attrs = {"a", "d"};
  return family;
}

void RecordOptimizeCounters(benchmark::State& state, const Family& family) {
  SimpleCostFunction cost(family.schema.get());
  plan_opt::PassManager manager;
  plan_opt::OptimizeStats stats;
  Plan optimized =
      manager.Optimize(family.plan, *family.schema, cost, &stats).value();
  state.counters["cost_before"] = stats.cost_before;
  state.counters["cost_after"] = stats.cost_after;
  state.counters["commands_before"] = stats.commands_before;
  state.counters["commands_after"] = stats.commands_after;
  state.counters["access_before"] = stats.access_commands_before;
  state.counters["access_after"] = stats.access_commands_after;
  for (const plan_opt::PassStats& pass : stats.passes) {
    state.counters[pass.pass + "_cost_delta"] =
        pass.cost_before - pass.cost_after;
  }
}

void BM_OptimizeAccessRedundant(benchmark::State& state) {
  Family family =
      MakeAccessRedundant(static_cast<int>(state.range(0)), /*rows=*/256);
  SimpleCostFunction cost(family.schema.get());
  plan_opt::PassManager manager;
  for (auto _ : state) {
    auto optimized = manager.Optimize(family.plan, *family.schema, cost);
    benchmark::DoNotOptimize(optimized);
  }
  RecordOptimizeCounters(state, family);
}
BENCHMARK(BM_OptimizeAccessRedundant)->ArgName("copies")->Arg(4)->Arg(8);

void BM_OptimizeJoinHeavy(benchmark::State& state) {
  Family family = MakeJoinHeavy(/*rows=*/128);
  SimpleCostFunction cost(family.schema.get());
  plan_opt::PassManager manager;
  for (auto _ : state) {
    auto optimized = manager.Optimize(family.plan, *family.schema, cost);
    benchmark::DoNotOptimize(optimized);
  }
  RecordOptimizeCounters(state, family);
}
BENCHMARK(BM_OptimizeJoinHeavy);

void RunExecBench(benchmark::State& state, const Family& family,
                  bool optimize) {
  Plan plan = family.plan;
  SimpleCostFunction cost(family.schema.get());
  if (optimize) {
    plan = plan_opt::PassManager()
               .Optimize(family.plan, *family.schema, cost)
               .value();
  }
  for (auto _ : state) {
    SimulatedSource source(family.schema.get(), family.instance.get());
    ExecutionOptions options;
    options.engine = ExecutionEngine::kVectorized;
    auto result = ExecutePlan(plan, source, options);
    if (!result.ok()) state.SkipWithError(result.status().message().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.counters["plan_cost"] = cost.Cost(plan);
  state.counters["access_commands"] =
      static_cast<double>(plan.NumAccessCommands());
}

void BM_ExecAccessRedundantUnopt(benchmark::State& state) {
  Family family = MakeAccessRedundant(8, /*rows=*/1024);
  RunExecBench(state, family, /*optimize=*/false);
}
BENCHMARK(BM_ExecAccessRedundantUnopt)->Unit(benchmark::kMicrosecond);

void BM_ExecAccessRedundantOpt(benchmark::State& state) {
  Family family = MakeAccessRedundant(8, /*rows=*/1024);
  RunExecBench(state, family, /*optimize=*/true);
}
BENCHMARK(BM_ExecAccessRedundantOpt)->Unit(benchmark::kMicrosecond);

void BM_ExecJoinHeavyUnopt(benchmark::State& state) {
  Family family = MakeJoinHeavy(/*rows=*/512);
  RunExecBench(state, family, /*optimize=*/false);
}
BENCHMARK(BM_ExecJoinHeavyUnopt)->Unit(benchmark::kMicrosecond);

void BM_ExecJoinHeavyOpt(benchmark::State& state) {
  Family family = MakeJoinHeavy(/*rows=*/512);
  RunExecBench(state, family, /*optimize=*/true);
}
BENCHMARK(BM_ExecJoinHeavyOpt)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
