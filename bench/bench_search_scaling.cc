// Experiment E6 (§5 "Optimizations"): how the explored proof space grows
// with the number of alternative sources, and how much the cost-bound and
// dominance prunings shrink it. The paper motivates both prunings; the
// expected shape is a combinatorial explosion without pruning and
// near-linear growth with both prunings on.

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/planner/proof_search.h"
#include "lcp/workload/scenarios.h"

namespace {

using namespace lcp;

SearchOutcome RunSearch(int num_sources, bool prune_cost, bool prune_dom) {
  Scenario scenario = MakeMultiSourceScenario(num_sources).value();
  AccessibleSchema accessible =
      AccessibleSchema::Build(*scenario.schema, AccessibleVariant::kStandard)
          .value();
  SimpleCostFunction cost(scenario.schema.get());
  ProofSearch search(&accessible, &cost);
  SearchOptions options;
  options.max_access_commands = num_sources + 1;
  options.prune_by_cost = prune_cost;
  options.prune_by_dominance = prune_dom;
  options.candidate_order = CandidateOrder::kFreeAccessFirst;
  options.max_nodes = 2000000;
  return search.Run(scenario.query, options).value();
}

void BM_SearchScaling(benchmark::State& state) {
  const int sources = static_cast<int>(state.range(0));
  const bool pruning = state.range(1) != 0;
  for (auto _ : state) {
    SearchOutcome outcome = RunSearch(sources, pruning, pruning);
    benchmark::DoNotOptimize(outcome.stats.nodes_created);
  }
}
BENCHMARK(BM_SearchScaling)
    ->ArgsProduct({{2, 3, 4, 5}, {0, 1}})
    ->ArgNames({"sources", "pruning"});

void PrintReproduction() {
  std::cout << "\n=== E6: explored proof nodes vs number of sources ===\n";
  std::cout << "sources | no pruning | cost only | dominance only | both\n";
  for (int n = 1; n <= 6; ++n) {
    SearchOutcome none = RunSearch(n, false, false);
    SearchOutcome cost_only = RunSearch(n, true, false);
    SearchOutcome dom_only = RunSearch(n, false, true);
    SearchOutcome both = RunSearch(n, true, true);
    std::cout << "  " << std::setw(5) << n << " | " << std::setw(10)
              << none.stats.nodes_created << " | " << std::setw(9)
              << cost_only.stats.nodes_created << " | " << std::setw(14)
              << dom_only.stats.nodes_created << " | " << std::setw(5)
              << both.stats.nodes_created << "\n";
  }
  std::cout << "(all four configurations return the same optimal cost)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintReproduction();
  return 0;
}
