// Experiment E7 (§5): termination of the cost-free closure on cyclic
// guarded TGDs via the local blocking condition. Without blocking the chase
// runs forever (here: until the depth cap); with blocking it stops after a
// bounded number of firings independent of the cap.

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "lcp/chase/engine.h"
#include "lcp/planner/proof_search.h"
#include "lcp/accessible/accessible_schema.h"
#include "lcp/workload/scenarios.h"

namespace {

using namespace lcp;

ChaseStats RunCyclicChase(bool blocking, int depth_cap) {
  Scenario scenario = MakeCyclicGuardedScenario().value();
  TermArena arena;
  ChaseEngine engine(scenario.schema.get(), &arena);
  CanonicalDatabase canonical = BuildCanonicalDatabase(scenario.query, arena);
  ChaseOptions options;
  options.use_guarded_blocking = blocking;
  options.max_null_depth = depth_cap;
  options.max_firings = 100000;
  options.fail_on_firing_cap = false;
  return engine.Run(scenario.schema->constraints(), options, canonical.config)
      .value();
}

void BM_CyclicGuardedWithBlocking(benchmark::State& state) {
  for (auto _ : state) {
    ChaseStats stats = RunCyclicChase(true, -1);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_CyclicGuardedWithBlocking);

void PrintReproduction() {
  std::cout << "\n=== E7: guarded blocking on a cyclic TGD set ===\n";
  std::cout << "config                | firings | fixpoint | blocked\n";
  {
    ChaseStats stats = RunCyclicChase(true, -1);
    std::cout << "blocking, no cap      | " << std::setw(7) << stats.firings
              << " | " << (stats.reached_fixpoint ? "yes" : "no ") << "      | "
              << stats.blocked_triggers << "\n";
  }
  for (int cap : {4, 8, 16}) {
    ChaseStats stats = RunCyclicChase(false, cap);
    std::cout << "no blocking, depth " << std::setw(2) << cap << " | "
              << std::setw(7) << stats.firings << " | "
              << (stats.reached_fixpoint ? "yes" : "no ") << "      | "
              << stats.blocked_triggers << "\n";
  }

  // End to end: the planner still finds a plan on the cyclic schema when
  // its closures use blocking.
  Scenario scenario = MakeCyclicGuardedScenario().value();
  AccessibleSchema accessible =
      AccessibleSchema::Build(*scenario.schema, AccessibleVariant::kStandard)
          .value();
  SimpleCostFunction cost(scenario.schema.get());
  ProofSearch search(&accessible, &cost);
  SearchOptions options;
  options.max_access_commands = 2;
  options.root_chase.use_guarded_blocking = true;
  options.closure_chase.use_guarded_blocking = true;
  auto outcome = search.Run(scenario.query, options);
  std::cout << "planner on cyclic guarded schema: "
            << (outcome.ok() && outcome->best.has_value()
                    ? "plan found, cost " +
                          std::to_string(outcome->best->cost)
                    : std::string("no plan"))
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintReproduction();
  return 0;
}
