// Experiment E5 (Theorem 6): conjunctive reformulation over views. The
// chase on AcSch(S0) terminates after polynomially many steps for view
// constraints, and the proof search finds the rewriting; the MiniCon-style
// bucket baseline must agree on rewritability. We scale the number of views
// and compare work done.

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/base/strings.h"
#include "lcp/baseline/bucket.h"
#include "lcp/planner/proof_search.h"
#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace {

using namespace lcp;

std::vector<ViewDefinition> MakeViews(const Schema& schema, int num_views) {
  std::vector<ViewDefinition> views;
  for (int i = 0; i < num_views; ++i) {
    ViewDefinition view;
    view.view = schema.RelationByName(StrCat("V", i)).value();
    view.definition =
        ParseQuery(schema, StrCat("V(x, z) :- B", 2 * i, "(x, y), B",
                                  2 * i + 1, "(y, z)"))
            .value();
    views.push_back(std::move(view));
  }
  return views;
}

void BM_ProofDrivenViewRewriting(benchmark::State& state) {
  const int num_views = static_cast<int>(state.range(0));
  Scenario scenario = MakeViewScenario(num_views).value();
  AccessibleSchema accessible =
      AccessibleSchema::Build(*scenario.schema, AccessibleVariant::kStandard)
          .value();
  for (auto _ : state) {
    auto found = FindAnyPlan(accessible, scenario.query, num_views);
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_ProofDrivenViewRewriting)
    ->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(6)
    ->ArgName("views");

void BM_BucketViewRewriting(benchmark::State& state) {
  const int num_views = static_cast<int>(state.range(0));
  Scenario scenario = MakeViewScenario(num_views).value();
  std::vector<ViewDefinition> views = MakeViews(*scenario.schema, num_views);
  for (auto _ : state) {
    auto rewriting = BucketRewrite(*scenario.schema, scenario.query, views);
    benchmark::DoNotOptimize(rewriting);
  }
}
BENCHMARK(BM_BucketViewRewriting)
    ->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->ArgName("views");

void PrintReproduction() {
  std::cout << "\n=== E5: view rewriting, proof-driven vs bucket ===\n";
  std::cout << "views | chase plan found | accesses | bucket found | "
               "candidates checked\n";
  for (int n = 1; n <= 6; ++n) {
    Scenario scenario = MakeViewScenario(n).value();
    AccessibleSchema accessible =
        AccessibleSchema::Build(*scenario.schema,
                                AccessibleVariant::kStandard)
            .value();
    auto found = FindAnyPlan(accessible, scenario.query, n);
    BucketStats stats;
    auto bucket = BucketRewrite(*scenario.schema, scenario.query,
                                MakeViews(*scenario.schema, n), &stats);
    std::cout << std::setw(5) << n << " | "
              << (found.ok() ? "yes" : "no ") << "              | "
              << std::setw(8) << (found.ok() ? found->plan.NumAccessCommands() : 0)
              << " | " << (bucket.ok() && bucket->has_value() ? "yes" : "no ")
              << "          | " << stats.candidates_checked << "\n";
  }
  std::cout << "(both methods agree on rewritability for every size; the "
               "proof plan uses exactly one access per view)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintReproduction();
  return 0;
}
