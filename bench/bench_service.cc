// Experiment E12: the concurrent query service layer. Three questions:
//
//   BM_ServicePlanCold     — per-request cost with the plan cache disabled:
//                            every request pays a full proof search.
//   BM_ServicePlanWarm     — the same requests against a warm cache: one
//                            fingerprint + one sharded probe. The cold/warm
//                            ratio is the amortization headline
//                            (bench/run_benches.sh reports it; target >=10x).
//   BM_ServiceThroughput   — end-to-end plan+execute requests drained by
//                            1 / 2 / 4 workers (warm cache, per-worker
//                            sources): thread scaling of the serving path.
//   BM_ServiceOverload     — a burst at 4x the service's capacity against a
//                            bounded queue (kRejectNew): goodput and shed
//                            rate under overload, plus the p50/p99 latency
//                            of a *rejected* Submit — the fast-fail path
//                            must stay microseconds while workers grind.
//
// Queries rotate through α-renamed variants, so the warm numbers include the
// canonicalizer, not just the hash probe.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/data/generator.h"
#include "lcp/runtime/source.h"
#include "lcp/schema/parser.h"
#include "lcp/service/service.h"
#include "lcp/workload/scenarios.h"

namespace {

using namespace lcp;

struct ServiceWorkload {
  std::unique_ptr<Schema> schema;
  std::unique_ptr<AccessibleSchema> accessible;
  std::unique_ptr<SimpleCostFunction> cost;
  std::unique_ptr<Instance> instance;
  /// α-renamed variants of the scenario query: identical cache entry,
  /// distinct texts through the canonicalizer.
  std::vector<ConjunctiveQuery> queries;

  ServiceWorkload() {
    auto scenario = MakeProfinfoScenario(false);
    schema = std::move(scenario->schema);
    queries.push_back(scenario->query);
    for (const char* text :
         {"Q(p) :- Profinfo(p, room, \"smith\")",
          "Q(who) :- Profinfo(who, office, \"smith\")",
          "Q(id) :- Profinfo(id, o, \"smith\")"}) {
      queries.push_back(ParseQuery(*schema, text).value());
    }
    accessible = std::make_unique<AccessibleSchema>(
        AccessibleSchema::Build(*schema, AccessibleVariant::kStandard)
            .value());
    cost = std::make_unique<SimpleCostFunction>(schema.get());
    GeneratorOptions gen;
    gen.seed = 7;
    // Big enough that one request's execution is real work (hundreds of
    // keyed probes): worker scaling should measure serving, not condvar
    // hand-off latency.
    gen.facts_per_relation = 512;
    gen.domain_size = 256;
    instance = std::make_unique<Instance>(
        GenerateInstance(*schema, gen).value());
  }

  QueryService::SourceFactory Factory() const {
    const Schema* s = schema.get();
    const Instance* inst = instance.get();
    return [s, inst] { return std::make_unique<SimulatedSource>(s, inst); };
  }
};

/// Plan-only workload for the cold/warm pair: the chain scenario's proof
/// search has to walk the referential chain, so a cold plan is real search
/// work (profinfo's search is nearly as cheap as the cache probe and would
/// understate the amortization).
struct PlanWorkload {
  std::unique_ptr<Schema> schema;
  std::unique_ptr<AccessibleSchema> accessible;
  std::unique_ptr<SimpleCostFunction> cost;
  std::vector<ConjunctiveQuery> queries;

  PlanWorkload() {
    auto scenario = MakeChainScenario(4);
    schema = std::move(scenario->schema);
    queries.push_back(scenario->query);
    for (const char* text : {"Q(x) :- R0(x, y)", "Q(head) :- R0(head, next)",
                             "Q(u) :- R0(u, v)"}) {
      queries.push_back(ParseQuery(*schema, text).value());
    }
    accessible = std::make_unique<AccessibleSchema>(
        AccessibleSchema::Build(*schema, AccessibleVariant::kStandard)
            .value());
    cost = std::make_unique<SimpleCostFunction>(schema.get());
  }
};

constexpr int kPlanBatch = 64;

/// Drives one iteration's worth of plan-only requests through the pipeline
/// (batch-submitted, so the condvar hand-off amortizes like in a loaded
/// server); returns false on any failure.
bool DrainPlanBatch(QueryService& service,
                    const std::vector<ConjunctiveQuery>& queries,
                    size_t& which) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(kPlanBatch);
  for (int i = 0; i < kPlanBatch; ++i) {
    QueryRequest request;
    request.query = queries[which++ % queries.size()];
    request.execute = false;
    futures.push_back(service.Submit(std::move(request)).future);
  }
  for (auto& future : futures) {
    QueryResponse response = future.get();
    benchmark::DoNotOptimize(response);
    if (!response.status.ok()) return false;
  }
  return true;
}

void BM_ServicePlanCold(benchmark::State& state) {
  PlanWorkload w;
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_enabled = false;
  QueryService service(w.accessible.get(), w.cost.get(), nullptr, options);
  size_t which = 0;
  for (auto _ : state) {
    if (!DrainPlanBatch(service, w.queries, which)) {
      state.SkipWithError("planning failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * kPlanBatch);
  state.counters["searches"] =
      static_cast<double>(service.SnapshotStats().searches);
}
BENCHMARK(BM_ServicePlanCold)->UseRealTime();

void BM_ServicePlanWarm(benchmark::State& state) {
  PlanWorkload w;
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(w.accessible.get(), w.cost.get(), nullptr, options);
  QueryRequest warmup;
  warmup.query = w.queries[0];
  warmup.execute = false;
  if (!service.Call(warmup).status.ok()) {
    state.SkipWithError("warmup planning failed");
    return;
  }
  size_t which = 0;
  for (auto _ : state) {
    if (!DrainPlanBatch(service, w.queries, which)) {
      state.SkipWithError("planning failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * kPlanBatch);
  state.counters["hit_rate"] = service.SnapshotStats().CacheHitRate();
}
BENCHMARK(BM_ServicePlanWarm)->UseRealTime();

void BM_ServiceThroughput(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  constexpr int kBatch = 256;
  ServiceWorkload w;
  ServiceOptions options;
  options.num_workers = workers;
  QueryService service(w.accessible.get(), w.cost.get(), w.Factory(),
                       options);
  QueryRequest warmup;
  warmup.query = w.queries[0];
  if (!service.Call(warmup).status.ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  for (auto _ : state) {
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      QueryRequest request;
      request.query = w.queries[i % w.queries.size()];
      futures.push_back(service.Submit(std::move(request)).future);
    }
    for (auto& future : futures) {
      QueryResponse response = future.get();
      if (!response.status.ok()) state.SkipWithError("request failed");
      benchmark::DoNotOptimize(response);
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["hit_rate"] = service.SnapshotStats().CacheHitRate();
}
BENCHMARK(BM_ServiceThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("workers")
    ->UseRealTime();

void BM_ServiceOverload(benchmark::State& state) {
  ServiceWorkload w;
  ServiceOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 32;
  options.shed_policy = ShedPolicy::kRejectNew;
  QueryService service(w.accessible.get(), w.cost.get(), w.Factory(),
                       options);
  QueryRequest warmup;
  warmup.query = w.queries[0];
  if (!service.Call(warmup).status.ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  // 4x the service's standing capacity (workers + queue slots).
  const int burst = 4 * (options.num_workers +
                         static_cast<int>(options.max_queue_depth));
  uint64_t ok = 0;
  uint64_t rejected = 0;
  std::vector<double> reject_us;
  for (auto _ : state) {
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(burst);
    for (int i = 0; i < burst; ++i) {
      QueryRequest request;
      request.query = w.queries[static_cast<size_t>(i) % w.queries.size()];
      const auto before = std::chrono::steady_clock::now();
      SubmitHandle handle = service.Submit(std::move(request));
      const auto after = std::chrono::steady_clock::now();
      if (handle.ticket == 0) {
        ++rejected;
        reject_us.push_back(
            std::chrono::duration<double, std::micro>(after - before)
                .count());
      }
      futures.push_back(std::move(handle.future));
    }
    for (auto& future : futures) {
      QueryResponse response = future.get();
      if (response.status.ok()) ++ok;
      benchmark::DoNotOptimize(response);
    }
  }
  state.SetItemsProcessed(state.iterations() * burst);
  const double total =
      static_cast<double>(state.iterations()) * static_cast<double>(burst);
  state.counters["goodput"] = benchmark::Counter(
      static_cast<double>(ok), benchmark::Counter::kIsRate);
  state.counters["shed_rate"] =
      total == 0 ? 0.0 : static_cast<double>(rejected) / total;
  if (!reject_us.empty()) {
    std::sort(reject_us.begin(), reject_us.end());
    state.counters["reject_p50_us"] = reject_us[reject_us.size() / 2];
    state.counters["reject_p99_us"] =
        reject_us[reject_us.size() * 99 / 100];
  }
}
BENCHMARK(BM_ServiceOverload)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
