// Experiment E12: the concurrent query service layer. Three questions:
//
//   BM_ServicePlanCold     — per-request cost with the plan cache disabled:
//                            every request pays a full proof search.
//   BM_ServicePlanWarm     — the same requests against a warm cache: one
//                            fingerprint + one sharded probe. The cold/warm
//                            ratio is the amortization headline
//                            (bench/run_benches.sh reports it; target >=10x).
//   BM_ServiceThroughput   — end-to-end plan+execute requests drained by
//                            1 / 2 / 4 workers (warm cache, per-worker
//                            sources): thread scaling of the serving path.
//   BM_ServiceOverload     — a burst at 4x the service's capacity against a
//                            bounded queue (kRejectNew): goodput and shed
//                            rate under overload, plus the p50/p99 latency
//                            of a *rejected* Submit — the fast-fail path
//                            must stay microseconds while workers grind.
//   BM_FailoverOutage      — goodput through a scheduled source outage on a
//                            virtual clock: quarantine, in-request failover
//                            to a pricier detour plan, failed probes during
//                            the outage, recovery after the heal. The
//                            headline is that goodput stays at 100% — only
//                            plan cost degrades, never availability.
//   BM_ServiceCoalescedBurst — a duplicate-heavy (zipf-flavoured) burst
//                            against a cache cold for this epoch, with
//                            single-flight coalescing off (arg 0) vs on
//                            (arg 1): the searches_per_burst counter is the
//                            headline — with coalescing it collapses to
//                            roughly one search per distinct query.
//   BM_ServiceSnapshotRestart — service construction plus first requests,
//                            cold (arg 0) vs warmed from a plan-cache
//                            snapshot (arg 1): the warm restart re-proves
//                            nothing (searches_per_restart == 0).
//
// Queries rotate through α-renamed variants, so the warm numbers include the
// canonicalizer, not just the hash probe.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/data/generator.h"
#include "lcp/runtime/faults.h"
#include "lcp/runtime/source.h"
#include "lcp/schema/parser.h"
#include "lcp/service/service.h"
#include "lcp/workload/scenarios.h"

namespace {

using namespace lcp;

struct ServiceWorkload {
  std::unique_ptr<Schema> schema;
  std::unique_ptr<AccessibleSchema> accessible;
  std::unique_ptr<SimpleCostFunction> cost;
  std::unique_ptr<Instance> instance;
  /// α-renamed variants of the scenario query: identical cache entry,
  /// distinct texts through the canonicalizer.
  std::vector<ConjunctiveQuery> queries;

  ServiceWorkload() {
    auto scenario = MakeProfinfoScenario(false);
    schema = std::move(scenario->schema);
    queries.push_back(scenario->query);
    for (const char* text :
         {"Q(p) :- Profinfo(p, room, \"smith\")",
          "Q(who) :- Profinfo(who, office, \"smith\")",
          "Q(id) :- Profinfo(id, o, \"smith\")"}) {
      queries.push_back(ParseQuery(*schema, text).value());
    }
    accessible = std::make_unique<AccessibleSchema>(
        AccessibleSchema::Build(*schema, AccessibleVariant::kStandard)
            .value());
    cost = std::make_unique<SimpleCostFunction>(schema.get());
    GeneratorOptions gen;
    gen.seed = 7;
    // Big enough that one request's execution is real work (hundreds of
    // keyed probes): worker scaling should measure serving, not condvar
    // hand-off latency.
    gen.facts_per_relation = 512;
    gen.domain_size = 256;
    instance = std::make_unique<Instance>(
        GenerateInstance(*schema, gen).value());
  }

  QueryService::SourceFactory Factory() const {
    const Schema* s = schema.get();
    const Instance* inst = instance.get();
    return [s, inst] { return std::make_unique<SimulatedSource>(s, inst); };
  }
};

/// Plan-only workload for the cold/warm pair: the chain scenario's proof
/// search has to walk the referential chain, so a cold plan is real search
/// work (profinfo's search is nearly as cheap as the cache probe and would
/// understate the amortization).
struct PlanWorkload {
  std::unique_ptr<Schema> schema;
  std::unique_ptr<AccessibleSchema> accessible;
  std::unique_ptr<SimpleCostFunction> cost;
  std::vector<ConjunctiveQuery> queries;

  explicit PlanWorkload(int chain_length = 4) {
    auto scenario = MakeChainScenario(chain_length);
    schema = std::move(scenario->schema);
    queries.push_back(scenario->query);
    for (const char* text : {"Q(x) :- R0(x, y)", "Q(head) :- R0(head, next)",
                             "Q(u) :- R0(u, v)"}) {
      queries.push_back(ParseQuery(*schema, text).value());
    }
    accessible = std::make_unique<AccessibleSchema>(
        AccessibleSchema::Build(*schema, AccessibleVariant::kStandard)
            .value());
    cost = std::make_unique<SimpleCostFunction>(schema.get());
  }
};

constexpr int kPlanBatch = 64;

/// Drives one iteration's worth of plan-only requests through the pipeline
/// (batch-submitted, so the condvar hand-off amortizes like in a loaded
/// server); returns false on any failure.
bool DrainPlanBatch(QueryService& service,
                    const std::vector<ConjunctiveQuery>& queries,
                    size_t& which) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(kPlanBatch);
  for (int i = 0; i < kPlanBatch; ++i) {
    QueryRequest request;
    request.query = queries[which++ % queries.size()];
    request.execute = false;
    futures.push_back(service.Submit(std::move(request)).future);
  }
  for (auto& future : futures) {
    QueryResponse response = future.get();
    benchmark::DoNotOptimize(response);
    if (!response.status.ok()) return false;
  }
  return true;
}

void BM_ServicePlanCold(benchmark::State& state) {
  PlanWorkload w;
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_enabled = false;
  QueryService service(w.accessible.get(), w.cost.get(), nullptr, options);
  size_t which = 0;
  for (auto _ : state) {
    if (!DrainPlanBatch(service, w.queries, which)) {
      state.SkipWithError("planning failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * kPlanBatch);
  state.counters["searches"] =
      static_cast<double>(service.SnapshotStats().searches);
}
BENCHMARK(BM_ServicePlanCold)->UseRealTime();

void BM_ServicePlanWarm(benchmark::State& state) {
  PlanWorkload w;
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(w.accessible.get(), w.cost.get(), nullptr, options);
  QueryRequest warmup;
  warmup.query = w.queries[0];
  warmup.execute = false;
  if (!service.Call(warmup).status.ok()) {
    state.SkipWithError("warmup planning failed");
    return;
  }
  size_t which = 0;
  for (auto _ : state) {
    if (!DrainPlanBatch(service, w.queries, which)) {
      state.SkipWithError("planning failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * kPlanBatch);
  state.counters["hit_rate"] = service.SnapshotStats().CacheHitRate();
}
BENCHMARK(BM_ServicePlanWarm)->UseRealTime();

void BM_ServiceThroughput(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  constexpr int kBatch = 256;
  ServiceWorkload w;
  ServiceOptions options;
  options.num_workers = workers;
  QueryService service(w.accessible.get(), w.cost.get(), w.Factory(),
                       options);
  QueryRequest warmup;
  warmup.query = w.queries[0];
  if (!service.Call(warmup).status.ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  for (auto _ : state) {
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      QueryRequest request;
      request.query = w.queries[i % w.queries.size()];
      futures.push_back(service.Submit(std::move(request)).future);
    }
    for (auto& future : futures) {
      QueryResponse response = future.get();
      if (!response.status.ok()) state.SkipWithError("request failed");
      benchmark::DoNotOptimize(response);
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["hit_rate"] = service.SnapshotStats().CacheHitRate();
}
BENCHMARK(BM_ServiceThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("workers")
    ->UseRealTime();

void BM_ServiceOverload(benchmark::State& state) {
  ServiceWorkload w;
  ServiceOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 32;
  options.shed_policy = ShedPolicy::kRejectNew;
  QueryService service(w.accessible.get(), w.cost.get(), w.Factory(),
                       options);
  QueryRequest warmup;
  warmup.query = w.queries[0];
  if (!service.Call(warmup).status.ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  // 4x the service's standing capacity (workers + queue slots).
  const int burst = 4 * (options.num_workers +
                         static_cast<int>(options.max_queue_depth));
  uint64_t ok = 0;
  uint64_t rejected = 0;
  std::vector<double> reject_us;
  for (auto _ : state) {
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(burst);
    for (int i = 0; i < burst; ++i) {
      QueryRequest request;
      request.query = w.queries[static_cast<size_t>(i) % w.queries.size()];
      const auto before = std::chrono::steady_clock::now();
      SubmitHandle handle = service.Submit(std::move(request));
      const auto after = std::chrono::steady_clock::now();
      if (handle.ticket == 0) {
        ++rejected;
        reject_us.push_back(
            std::chrono::duration<double, std::micro>(after - before)
                .count());
      }
      futures.push_back(std::move(handle.future));
    }
    for (auto& future : futures) {
      QueryResponse response = future.get();
      if (response.status.ok()) ++ok;
      benchmark::DoNotOptimize(response);
    }
  }
  state.SetItemsProcessed(state.iterations() * burst);
  const double total =
      static_cast<double>(state.iterations()) * static_cast<double>(burst);
  state.counters["goodput"] = benchmark::Counter(
      static_cast<double>(ok), benchmark::Counter::kIsRate);
  state.counters["shed_rate"] =
      total == 0 ? 0.0 : static_cast<double>(rejected) / total;
  if (!reject_us.empty()) {
    std::sort(reject_us.begin(), reject_us.end());
    state.counters["reject_p50_us"] = reject_us[reject_us.size() / 2];
    state.counters["reject_p99_us"] =
        reject_us[reject_us.size() * 99 / 100];
  }
}
BENCHMARK(BM_ServiceOverload)->UseRealTime();

/// A worker source for the failover bench: SimulatedSource wrapped in a
/// FaultInjectingSource with a deterministic outage schedule on the shared
/// virtual clock.
class OutageSource : public AccessSource {
 public:
  OutageSource(const Schema* schema, const Instance* instance, Clock* clock,
               AccessMethodId victim, int64_t fail_at, int64_t recover_at)
      : base_(schema, instance),
        faulty_(&base_, FaultProfile{}, /*seed=*/1, clock) {
    faulty_.FailFrom(victim, fail_at);
    faulty_.RecoverAt(victim, recover_at);
  }
  Result<AccessOutcome> TryAccess(AccessMethodId method,
                                  const Tuple& inputs) override {
    return faulty_.TryAccess(method, inputs);
  }
  const Schema& schema() const override { return faulty_.schema(); }

 private:
  SimulatedSource base_;
  FaultInjectingSource faulty_;
};

void BM_FailoverOutage(benchmark::State& state) {
  // A relation with a cheap primary method and an expensive fallback: the
  // outage forces the service onto the detour, recovery brings it back.
  Schema schema;
  RelationId r = schema.AddRelation("R", 2).value();
  const AccessMethodId cheap =
      schema.AddAccessMethod("mt_r_cheap", r, {}, 1.0).value();
  schema.AddAccessMethod("mt_r_expensive", r, {}, 25.0).value();
  auto accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard).value();
  SimpleCostFunction cost(&schema);
  Instance instance(&schema);
  for (int i = 0; i < 256; ++i) {
    instance.AddFact(r, Tuple{Value::Int(i), Value::Int(i % 17)});
  }
  ConjunctiveQuery query = ParseQuery(schema, "Q(x, y) :- R(x, y)").value();

  uint64_t ok = 0;
  uint64_t total = 0;
  ServiceStats last;
  for (auto _ : state) {
    // One full outage lifecycle per iteration: healthy -> outage (t=5ms) ->
    // quarantine + failover -> failed probe (window 20ms) -> heal (t=50ms)
    // -> successful probe -> primary plan restored.
    SharedVirtualClock clock;
    ServiceOptions options;
    options.num_workers = 2;
    options.clock = &clock;
    options.execution.retry.max_attempts = 1;
    options.health.quarantine_after_consecutive = 1;
    options.health.quarantine_micros = 20000;
    auto factory = [&schema, &instance, &clock, cheap] {
      return std::make_unique<OutageSource>(&schema, &instance, &clock, cheap,
                                            /*fail_at=*/5000,
                                            /*recover_at=*/50000);
    };
    QueryService service(&accessible, &cost, factory, options);
    constexpr int kPhaseBatch = 32;
    for (int64_t advance : {int64_t{0}, int64_t{10000}, int64_t{20000},
                            int64_t{30000}, int64_t{20000}}) {
      clock.Advance(advance);
      std::vector<std::future<QueryResponse>> futures;
      futures.reserve(kPhaseBatch);
      for (int i = 0; i < kPhaseBatch; ++i) {
        QueryRequest request;
        request.query = query;
        futures.push_back(service.Submit(std::move(request)).future);
      }
      for (auto& future : futures) {
        ++total;
        QueryResponse response = future.get();
        if (response.status.ok()) ++ok;
        benchmark::DoNotOptimize(response);
      }
    }
    service.Shutdown();
    last = service.SnapshotStats();
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
  state.counters["goodput"] = benchmark::Counter(
      static_cast<double>(ok), benchmark::Counter::kIsRate);
  state.counters["ok_fraction"] =
      total == 0 ? 0.0 : static_cast<double>(ok) / static_cast<double>(total);
  state.counters["degraded"] = static_cast<double>(last.degraded_responses);
  state.counters["failovers"] = static_cast<double>(last.failovers);
  state.counters["probes"] = static_cast<double>(last.probes_sent);
  state.counters["recoveries"] = static_cast<double>(last.recoveries);
}
BENCHMARK(BM_FailoverOutage)->UseRealTime();

/// Queries over *distinct* fingerprints (unlike ServiceWorkload::queries,
/// which are α-renamings of one key): the duplicate-heavy mixes below need
/// several real cache entries.
std::vector<ConjunctiveQuery> DistinctQueries(const ServiceWorkload& w) {
  std::vector<ConjunctiveQuery> queries = {w.queries[0]};
  for (const char* text :
       {"Q(e, l) :- Udirect(e, l)", "Q(l) :- Udirect(e, l)",
        "Q() :- Profinfo(eid, onum, lname)"}) {
    queries.push_back(ParseQuery(*w.schema, text).value());
  }
  return queries;
}

void BM_ServiceCoalescedBurst(benchmark::State& state) {
  const bool coalescing = state.range(0) != 0;
  // The 24-source scenario's proof search takes >10ms even with dominance
  // pruning — longer than both worker wake-up latency and a scheduler
  // timeslice, so concurrent duplicates genuinely overlap even on one core
  // (profinfo- or chain-style searches resolve faster than dispatch, so
  // nothing would ever coalesce). The α-renamed rotation is the zipf limit:
  // one hot key under maximal duplication, through the canonicalizer every
  // time.
  auto scenario = MakeMultiSourceScenario(24);
  std::unique_ptr<Schema> schema = std::move(scenario->schema);
  std::vector<ConjunctiveQuery> queries = {scenario->query};
  for (const char* text : {"Q() :- Profinfo(a, b, c)",
                           "Q() :- Profinfo(id, office, name)"}) {
    queries.push_back(ParseQuery(*schema, text).value());
  }
  AccessibleSchema accessible =
      AccessibleSchema::Build(*schema, AccessibleVariant::kStandard).value();
  SimpleCostFunction cost(schema.get());
  ServiceOptions options;
  options.num_workers = 4;
  options.coalescing_enabled = coalescing;
  QueryService service(&accessible, &cost, nullptr, options);
  constexpr int kBurst = 128;
  uint64_t ok = 0;
  for (auto _ : state) {
    // Each burst starts epoch-cold: every request for the key either pays a
    // proof search or coalesces onto one that is already in flight.
    service.BumpEpoch();
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      QueryRequest request;
      request.query = queries[static_cast<size_t>(i) % queries.size()];
      request.execute = false;
      futures.push_back(service.Submit(std::move(request)).future);
    }
    for (auto& future : futures) {
      QueryResponse response = future.get();
      if (response.status.ok()) ++ok;
      benchmark::DoNotOptimize(response);
    }
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
  const ServiceStats stats = service.SnapshotStats();
  const double iters = static_cast<double>(state.iterations());
  state.counters["searches_per_burst"] =
      iters == 0 ? 0.0 : static_cast<double>(stats.searches) / iters;
  state.counters["followers_per_burst"] =
      iters == 0 ? 0.0
                 : static_cast<double>(stats.coalesced_followers) / iters;
  state.counters["ok_fraction"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(ok) /
                (static_cast<double>(state.iterations()) * kBurst);
}
BENCHMARK(BM_ServiceCoalescedBurst)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("coalescing")
    ->UseRealTime();

void BM_ServiceSnapshotRestart(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  ServiceWorkload w;
  const std::vector<ConjunctiveQuery> queries = DistinctQueries(w);
  const std::string path = "lcp_bench_snapshot.bin";
  std::remove(path.c_str());
  if (warm) {
    // Seed the snapshot once: serve every distinct query, then drain — the
    // shutdown snapshot persists the warmed cache.
    ServiceOptions options;
    options.num_workers = 2;
    options.snapshot_path = path;
    QueryService seeder(w.accessible.get(), w.cost.get(), w.Factory(),
                        options);
    for (const ConjunctiveQuery& query : queries) {
      QueryRequest request;
      request.query = query;
      request.execute = false;
      if (!seeder.Call(std::move(request)).status.ok()) {
        state.SkipWithError("seeding failed");
        return;
      }
    }
    seeder.Shutdown(ShutdownMode::kDrain);
  }
  uint64_t searches = 0;
  uint64_t loaded = 0;
  for (auto _ : state) {
    // One restart per iteration: construct (loading the snapshot, if any),
    // serve the whole distinct set, abort-shutdown (no snapshot rewrite).
    ServiceOptions options;
    options.num_workers = 2;
    options.snapshot_path = path;
    QueryService service(w.accessible.get(), w.cost.get(), w.Factory(),
                         options);
    for (const ConjunctiveQuery& query : queries) {
      QueryRequest request;
      request.query = query;
      request.execute = false;
      QueryResponse response = service.Call(std::move(request));
      if (!response.status.ok()) {
        state.SkipWithError("restart request failed");
        return;
      }
      benchmark::DoNotOptimize(response);
    }
    const ServiceStats stats = service.SnapshotStats();
    searches += stats.searches;
    loaded += stats.snapshot_entries_loaded;
    service.Shutdown(ShutdownMode::kAbort);
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  const double iters = static_cast<double>(state.iterations());
  state.counters["searches_per_restart"] =
      iters == 0 ? 0.0 : static_cast<double>(searches) / iters;
  state.counters["entries_loaded_per_restart"] =
      iters == 0 ? 0.0 : static_cast<double>(loaded) / iters;
}
BENCHMARK(BM_ServiceSnapshotRestart)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("warm")
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
