// Experiment E11: runtime resilience overhead. Measures ExecutePlan on a
// two-access join plan (free scan + keyed probe) three ways:
//
//   BM_ExecuteDirect        — the historic direct path: an unwrapped
//                             SimulatedSource with default options. The
//                             retry machinery must cost nothing here (no
//                             clock reads, no PRNG draws, no breaker state).
//   BM_ExecuteFaultInjected — the same plan through FaultInjectingSource at
//                             fault rates 0 / 1% / 10% (rate_permille arg),
//                             retries + best-effort enabled, on a
//                             VirtualClock so backoff costs no wall time.
//
// The rate-0 wrapped run vs the direct run is the headline "zero-fault
// overhead" number (bench/run_benches.sh reports it from the JSON).

#include <benchmark/benchmark.h>

#include <memory>
#include <random>

#include "lcp/base/clock.h"
#include "lcp/runtime/executor.h"
#include "lcp/runtime/faults.h"

namespace {

using namespace lcp;

struct Workload {
  Schema schema;
  std::unique_ptr<Instance> instance;

  explicit Workload(int n) {
    RelationId r = schema.AddRelation("R", 2).value();
    RelationId s = schema.AddRelation("S", 2).value();
    schema.AddAccessMethod("mt_r_free", r, {}, 2.0).value();
    schema.AddAccessMethod("mt_s_by0", s, {0}, 5.0).value();
    instance = std::make_unique<Instance>(&schema);
    std::mt19937_64 prng(7);
    for (int i = 0; i < n; ++i) {
      int64_t key = static_cast<int64_t>(prng() % (n * 2));
      instance->AddFact(0, Tuple{Value::Int(i), Value::Int(key)});
      if (prng() % 3 != 0) {
        instance->AddFact(1, Tuple{Value::Int(key), Value::Int(i * 100)});
      }
    }
  }
};

Plan MakeJoinPlan() {
  Plan plan;
  AccessCommand first;
  first.method = 0;
  first.output_table = "t0";
  first.output_columns = {{"a", 0}, {"b", 1}};
  plan.commands.push_back(first);
  AccessCommand second;
  second.method = 1;
  second.input = RaExpr::Project(RaExpr::TempScan("t0"), {"b"});
  second.input_binding = {{"b", 0}};
  second.output_table = "t1";
  second.output_columns = {{"b", 0}, {"c", 1}};
  plan.commands.push_back(second);
  plan.commands.push_back(QueryCommand{
      "t2", RaExpr::Join(RaExpr::TempScan("t0"), RaExpr::TempScan("t1"))});
  plan.output_table = "t2";
  plan.output_attrs = {"a", "c"};
  return plan;
}

void BM_ExecuteDirect(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Workload w(n);
  Plan plan = MakeJoinPlan();
  SimulatedSource source(&w.schema, w.instance.get());
  for (auto _ : state) {
    auto result = ExecutePlan(plan, source);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError("execution failed");
    state.counters["rows"] = static_cast<double>(result->output.size());
  }
}
BENCHMARK(BM_ExecuteDirect)->Arg(64)->Arg(256)->ArgName("n");

void BM_ExecuteFaultInjected(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int rate_permille = static_cast<int>(state.range(1));
  Workload w(n);
  Plan plan = MakeJoinPlan();
  SimulatedSource base(&w.schema, w.instance.get());
  FaultProfile profile;
  profile.defaults.transient_failure_rate = rate_permille / 1000.0;
  VirtualClock clock;
  FaultInjectingSource faulty(&base, profile, 4242, &clock);
  ExecutionOptions options;
  options.retry.max_attempts = 16;
  options.retry.initial_backoff_micros = 1000;
  options.retry.best_effort = true;
  options.clock = &clock;
  long long complete = 0, total = 0;
  for (auto _ : state) {
    auto result = ExecutePlan(plan, faulty, options);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError("execution failed");
    ++total;
    if (result->complete) ++complete;
    state.counters["rows"] = static_cast<double>(result->output.size());
  }
  state.counters["complete_fraction"] =
      total == 0 ? 1.0 : static_cast<double>(complete) / total;
  state.counters["injected_failures"] =
      static_cast<double>(faulty.stats().injected_failures);
}
BENCHMARK(BM_ExecuteFaultInjected)
    ->Args({64, 0})
    ->Args({64, 10})
    ->Args({64, 100})
    ->Args({256, 0})
    ->Args({256, 10})
    ->Args({256, 100})
    ->ArgNames({"n", "rate_permille"});

}  // namespace

BENCHMARK_MAIN();
