// Experiments E1 and E2: the paper's worked Examples 1/4 (Profinfo/Udirect)
// and 2 (telephone directories). For each we measure planning time and
// verify the reproduced plan shape: number of access commands, plan
// language, and end-to-end completeness against the oracle on a concrete
// instance.

#include <benchmark/benchmark.h>

#include <iostream>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/data/query_eval.h"
#include "lcp/planner/proof_search.h"
#include "lcp/runtime/executor.h"
#include "lcp/workload/scenarios.h"

namespace {

using namespace lcp;

void BM_Example1Planning(benchmark::State& state) {
  Scenario scenario = MakeProfinfoScenario(false).value();
  AccessibleSchema accessible =
      AccessibleSchema::Build(*scenario.schema, AccessibleVariant::kStandard)
          .value();
  for (auto _ : state) {
    auto found = FindAnyPlan(accessible, scenario.query, 3);
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_Example1Planning);

void BM_Example2Planning(benchmark::State& state) {
  Scenario scenario = MakeTelephoneScenario().value();
  AccessibleSchema accessible =
      AccessibleSchema::Build(*scenario.schema, AccessibleVariant::kStandard)
          .value();
  for (auto _ : state) {
    auto found = FindAnyPlan(accessible, scenario.query, 5);
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_Example2Planning);

void PrintReproduction() {
  std::cout << "\n=== E1: Example 1/4 (Profinfo behind an eid form) ===\n";
  {
    Scenario scenario = MakeProfinfoScenario(false).value();
    AccessibleSchema accessible =
        AccessibleSchema::Build(*scenario.schema,
                                AccessibleVariant::kStandard)
            .value();
    FoundPlan found = FindAnyPlan(accessible, scenario.query, 3).value();
    std::cout << "paper: plan pulls all of Udirect, checks in Profinfo (2 "
                 "accesses, SPJ)\n"
              << "measured: " << found.plan.NumAccessCommands()
              << " accesses, " << PlanLanguageName(found.plan.Language())
              << ", cost " << found.cost << "\n";

    Instance instance(scenario.schema.get());
    instance.AddFact("Profinfo",
                     {Value::Int(1), Value::Int(101), Value::Str("smith")});
    instance.AddFact("Udirect", {Value::Int(1), Value::Str("smith")});
    instance.AddFact("Udirect", {Value::Int(9), Value::Str("smith")});
    SimulatedSource source(scenario.schema.get(), &instance);
    ExecutionResult run = ExecutePlan(found.plan, source).value();
    std::cout << "completeness: plan answers "
              << run.output.size() << ", oracle answers "
              << EvaluateQuery(scenario.query, instance).size() << "\n";
  }

  std::cout << "\n=== E2: Example 2 (telephone directories) ===\n";
  {
    Scenario scenario = MakeTelephoneScenario().value();
    AccessibleSchema accessible =
        AccessibleSchema::Build(*scenario.schema,
                                AccessibleVariant::kStandard)
            .value();
    FoundPlan found = FindAnyPlan(accessible, scenario.query, 5).value();
    std::cout << "paper: Ids + Names -> Direct1 -> Direct2 (4 accesses)\n"
              << "measured: " << found.plan.NumAccessCommands()
              << " accesses, " << PlanLanguageName(found.plan.Language())
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintReproduction();
  return 0;
}
