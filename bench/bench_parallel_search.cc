// Parallel proof search: wall-clock speedup of the work-stealing driver
// over the sequential driver on a deliberately hard workload, plus the
// sequential-mode (parallelism=1) overhead of the refactoring.
//
// The workload is a chain query R0(x0,x1) ∧ ... ∧ R{k-1}(x_{k-1},x_k) where
// every relation carries `m` alternative free-access methods with slightly
// different costs. Any access order answers the query, so the proof space
// is the full (subset × method) lattice: the dominance store collapses
// same-subset permutations and the incumbent bound prunes expensive method
// choices — both shared structures are on the hot path, which is exactly
// what the parallel driver has to get right. Node expansions are dominated
// by config copies, chase closures, and homomorphism checks (µs–ms each),
// the granularity the work-stealing deque is designed for.
//
// Numbers to watch (also summarized by bench/run_benches.sh):
//  - BM_ParallelSearch/workers:1 vs workers:2/4/8 — the speedup curve.
//    Meaningful only on a host with that many cores; the summary prints the
//    host core count next to the results.
//  - workers:1 vs the pre-refactor sequential driver — tracked by
//    BM_SearchScaling in bench_search_scaling.cc (same code path), budget
//    <= 2% regression.

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>
#include <thread>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/planner/proof_search.h"
#include "lcp/schema/parser.h"
#include "lcp/schema/schema.h"

namespace {

using namespace lcp;

/// Chain of `chain_len` binary relations, `methods_per_relation` free-access
/// methods each with distinct costs, boolean chain query over all of them.
struct Workload {
  std::unique_ptr<Schema> schema;
  ConjunctiveQuery query;
};

Workload BuildChainWorkload(int chain_len, int methods_per_relation) {
  Workload w;
  w.schema = std::make_unique<Schema>();
  std::string body;
  for (int i = 0; i < chain_len; ++i) {
    RelationId rel =
        w.schema->AddRelation("R" + std::to_string(i), 2).value();
    for (int m = 0; m < methods_per_relation; ++m) {
      // Distinct costs so the optimum is unique and the incumbent bound has
      // something to cut; kept close so cost pruning alone cannot collapse
      // the space early.
      double cost = 1.0 + 0.1 * m + 0.01 * i;
      w.schema
          ->AddAccessMethod("mt_r" + std::to_string(i) + "_" +
                                std::to_string(m),
                            rel, {}, cost)
          .value();
    }
    if (i > 0) body += ", ";
    body += "R" + std::to_string(i) + "(x" + std::to_string(i) + ", x" +
            std::to_string(i + 1) + ")";
  }
  w.query = ParseQuery(*w.schema, "Q() :- " + body).value();
  return w;
}

SearchOutcome RunWorkload(const Workload& w, int parallelism) {
  AccessibleSchema accessible =
      AccessibleSchema::Build(*w.schema, AccessibleVariant::kStandard)
          .value();
  SimpleCostFunction cost(w.schema.get());
  ProofSearch search(&accessible, &cost);
  SearchOptions options;
  options.max_access_commands = w.schema->num_relations();
  options.max_nodes = 2000000;
  options.parallelism = parallelism;
  return search.Run(w.query, options).value();
}

constexpr int kChainLen = 10;
constexpr int kMethods = 3;

void BM_ParallelSearch(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  Workload w = BuildChainWorkload(kChainLen, kMethods);
  SearchOutcome outcome;
  for (auto _ : state) {
    outcome = RunWorkload(w, workers);
    benchmark::DoNotOptimize(outcome.best);
  }
  state.counters["parallelism"] = workers;
  state.counters["host_cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["nodes_expanded"] =
      static_cast<double>(outcome.stats.nodes_expanded);
  state.counters["nodes_created"] =
      static_cast<double>(outcome.stats.nodes_created);
  state.counters["best_cost"] = outcome.best ? outcome.best->cost : -1.0;
}
BENCHMARK(BM_ParallelSearch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"workers"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void PrintReproduction() {
  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "\n=== parallel proof search: speedup on the chain workload "
               "(k=" << kChainLen << ", m=" << kMethods << ") ===\n";
  std::cout << "host cores: " << cores
            << " (speedups beyond the core count measure contention, not "
               "parallelism)\n";
  Workload w = BuildChainWorkload(kChainLen, kMethods);
  double base_ms = 0;
  std::cout << "workers | wall ms | speedup | expanded | created | best\n";
  for (int workers : {1, 2, 4, 8}) {
    auto start = std::chrono::steady_clock::now();
    SearchOutcome outcome = RunWorkload(w, workers);
    auto elapsed = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (workers == 1) base_ms = elapsed;
    std::cout << "  " << std::setw(5) << workers << " | " << std::setw(7)
              << std::fixed << std::setprecision(1) << elapsed << " | "
              << std::setw(6) << std::setprecision(2)
              << (elapsed > 0 ? base_ms / elapsed : 0.0) << "x | "
              << std::setw(8) << outcome.stats.nodes_expanded << " | "
              << std::setw(7) << outcome.stats.nodes_created << " | "
              << std::setprecision(2) << (outcome.best ? outcome.best->cost
                                                       : -1.0)
              << "\n";
  }
  std::cout << "(every worker count finds the same optimal cost)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintReproduction();
  return 0;
}
