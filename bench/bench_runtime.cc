// Experiment E12: execution engine throughput. Measures ExecutePlan on a
// join-heavy plan — free scan of R, keyed probe of S driven by R's keys,
// keyed probe of T driven by S's keys, then a two-join middleware pipeline
// with a final dedup-heavy projection — once per engine:
//
//   BM_ExecuteRowOracle  — tuple-at-a-time evaluation over row Tables
//                          (ExecutionEngine::kRowOracle).
//   BM_ExecuteVectorized — columnar ColumnBatch evaluation with batched
//                          access dispatch (ExecutionEngine::kVectorized,
//                          the default engine).
//   BM_ExecuteMorsel     — the vectorized engine with morsel-driven
//                          parallelism (DESIGN.md §13), sweeping workers
//                          x instance size at a fixed morsel size.
//
// bench/run_benches.sh pairs the first two series and reports the speedup
// into BENCH_runtime_exec.json; the acceptance bar for the vectorized
// engine is >= 5x on the larger sizes. The morsel rows carry `workers` and
// `host_cores` counters — a speedup > 1 is only expected when host_cores
// exceeds 1 (on a 1-core runner the curve measures scheduling overhead).

#include <benchmark/benchmark.h>

#include <memory>
#include <random>
#include <thread>

#include "lcp/runtime/executor.h"

namespace {

using namespace lcp;

/// R(a,b) fans out into S(b,c) (two rows per key) which fans out into
/// T(c,d) (two rows per key): the two middleware joins multiply row counts,
/// so evaluation — not source access — dominates.
struct Workload {
  Schema schema;
  std::unique_ptr<Instance> instance;

  explicit Workload(int n) {
    RelationId r = schema.AddRelation("R", 2).value();
    RelationId s = schema.AddRelation("S", 2).value();
    RelationId t = schema.AddRelation("T", 2).value();
    schema.AddAccessMethod("mt_r_free", r, {}, 2.0).value();
    schema.AddAccessMethod("mt_s_by0", s, {0}, 5.0).value();
    schema.AddAccessMethod("mt_t_by0", t, {0}, 5.0).value();
    instance = std::make_unique<Instance>(&schema);
    std::mt19937_64 prng(7);
    const int keys = std::max(1, n / 4);
    for (int i = 0; i < n; ++i) {
      const int64_t b = static_cast<int64_t>(prng() % keys);
      instance->AddFact(0, Tuple{Value::Int(i), Value::Int(b)});
    }
    for (int64_t b = 0; b < keys; ++b) {
      for (int64_t j = 0; j < 2; ++j) {
        const int64_t c = b * 2 + j;
        instance->AddFact(1, Tuple{Value::Int(b), Value::Int(c)});
        instance->AddFact(2, Tuple{Value::Int(c), Value::Int(c % 16)});
        instance->AddFact(2, Tuple{Value::Int(c), Value::Int(16 + c % 16)});
      }
    }
  }
};

Plan MakeJoinHeavyPlan() {
  Plan plan;
  AccessCommand scan_r;
  scan_r.method = 0;
  scan_r.output_table = "t0";
  scan_r.output_columns = {{"a", 0}, {"b", 1}};
  plan.commands.push_back(scan_r);

  AccessCommand probe_s;
  probe_s.method = 1;
  probe_s.input = RaExpr::Project(RaExpr::TempScan("t0"), {"b"});
  probe_s.input_binding = {{"b", 0}};
  probe_s.output_table = "t1";
  probe_s.output_columns = {{"b", 0}, {"c", 1}};
  plan.commands.push_back(probe_s);

  AccessCommand probe_t;
  probe_t.method = 2;
  probe_t.input = RaExpr::Project(RaExpr::TempScan("t1"), {"c"});
  probe_t.input_binding = {{"c", 0}};
  probe_t.output_table = "t2";
  probe_t.output_columns = {{"c", 0}, {"d", 1}};
  plan.commands.push_back(probe_t);

  plan.commands.push_back(QueryCommand{
      "t3", RaExpr::Join(RaExpr::TempScan("t0"), RaExpr::TempScan("t1"))});
  plan.commands.push_back(QueryCommand{
      "t4", RaExpr::Join(RaExpr::TempScan("t3"), RaExpr::TempScan("t2"))});
  plan.commands.push_back(QueryCommand{
      "t5", RaExpr::Project(RaExpr::TempScan("t4"), {"a", "d"})});
  plan.output_table = "t5";
  plan.output_attrs = {"a", "d"};
  return plan;
}

void RunEngine(benchmark::State& state, ExecutionEngine engine) {
  const int n = static_cast<int>(state.range(0));
  Workload w(n);
  Plan plan = MakeJoinHeavyPlan();
  SimulatedSource source(&w.schema, w.instance.get());
  ExecutionOptions options;
  options.engine = engine;
  size_t rows = 0;
  ExecStats exec;
  for (auto _ : state) {
    auto result = ExecutePlan(plan, source, options);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) {
      state.SkipWithError("execution failed");
      return;
    }
    rows = result->output.size();
    exec = result->exec;
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["access_batches"] = static_cast<double>(exec.access_batches);
  state.counters["access_bindings"] = static_cast<double>(exec.access_bindings);
  state.counters["op_batches"] = static_cast<double>(exec.batches);
  state.counters["probe_hits"] = static_cast<double>(exec.probe_hits);
  state.counters["max_batch_rows"] = static_cast<double>(exec.max_batch_rows);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void BM_ExecuteRowOracle(benchmark::State& state) {
  RunEngine(state, ExecutionEngine::kRowOracle);
}
BENCHMARK(BM_ExecuteRowOracle)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->ArgName("n")
    ->Unit(benchmark::kMillisecond);

void BM_ExecuteVectorized(benchmark::State& state) {
  RunEngine(state, ExecutionEngine::kVectorized);
}
BENCHMARK(BM_ExecuteVectorized)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->ArgName("n")
    ->Unit(benchmark::kMillisecond);

/// Morsel-driven parallel execution of the same join-heavy plan. A fixed
/// morsel size keeps the morsel count proportional to n, so the worker
/// sweep isolates parallel scheduling from morsel sizing.
void BM_ExecuteMorsel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  Workload w(n);
  Plan plan = MakeJoinHeavyPlan();
  SimulatedSource source(&w.schema, w.instance.get());
  ExecutionOptions options;
  options.engine = ExecutionEngine::kVectorized;
  options.exec_parallelism = workers;
  options.morsel_rows = 2048;
  size_t rows = 0;
  ExecStats exec;
  for (auto _ : state) {
    auto result = ExecutePlan(plan, source, options);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) {
      state.SkipWithError("execution failed");
      return;
    }
    rows = result->output.size();
    exec = result->exec;
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["host_cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["morsels"] = static_cast<double>(exec.morsels);
  state.counters["build_partitions"] =
      static_cast<double>(exec.parallel_build_partitions);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ExecuteMorsel)
    ->ArgNames({"n", "workers"})
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Args({4096, 4})
    ->Args({16384, 1})
    ->Args({16384, 2})
    ->Args({16384, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
