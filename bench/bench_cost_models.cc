// Ablation (DESIGN.md): cost-model sensitivity of the winning plan. §2
// allows any monotone "black box" cost function; §5's Example 5 discussion
// argues the best plan depends on access costs and on "what percentage of
// the tuples in the two directory tables match". Under the simple
// (per-command) cost function the single cheapest directory wins; under a
// cardinality-aware cost with an expensive checking access and overlapping
// directories, the intersection plan wins — and both are found by the same
// proof search, just with a different cost oracle plugged in.

#include <benchmark/benchmark.h>

#include <iostream>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/plan/cardinality_cost.h"
#include "lcp/planner/proof_search.h"
#include "lcp/runtime/executor.h"
#include "lcp/workload/scenarios.h"

namespace {

using namespace lcp;

std::string AccessSequence(const Plan& plan, const Schema& schema) {
  std::string out;
  for (const Command& cmd : plan.commands) {
    if (const auto* access = std::get_if<AccessCommand>(&cmd)) {
      if (!out.empty()) out += " -> ";
      out += schema.access_method(access->method).name;
    }
  }
  return out;
}

SearchOutcome RunWith(const Scenario& scenario,
                      const AccessibleSchema& accessible,
                      const CostFunction& cost) {
  ProofSearch search(&accessible, &cost);
  SearchOptions options;
  options.max_access_commands = 4;
  options.candidate_order = CandidateOrder::kFreeAccessFirst;
  return search.Run(scenario.query, options).value();
}

void BM_SearchWithCardinalityCost(benchmark::State& state) {
  Scenario scenario = MakeMultiSourceScenario(3).value();
  AccessibleSchema accessible =
      AccessibleSchema::Build(*scenario.schema, AccessibleVariant::kStandard)
          .value();
  CardinalityEstimates estimates;
  estimates.default_cardinality = 1000;
  CardinalityCostFunction cost(scenario.schema.get(), estimates);
  for (auto _ : state) {
    SearchOutcome outcome = RunWith(scenario, accessible, cost);
    benchmark::DoNotOptimize(outcome.best);
  }
}
BENCHMARK(BM_SearchWithCardinalityCost);

void PrintReproduction() {
  std::cout << "\n=== Ablation: winning plan vs cost model (Example 5, "
               "3 directories, expensive Profinfo check) ===\n";
  const double dir_costs[3] = {1.0, 1.0, 1.0};
  Scenario scenario =
      MakeMultiSourceScenario(3, dir_costs, /*profinfo_cost=*/10.0).value();
  const Schema& schema = *scenario.schema;
  AccessibleSchema accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard).value();

  SimpleCostFunction simple(&schema);
  SearchOutcome simple_outcome = RunWith(scenario, accessible, simple);
  std::cout << "simple cost (per command):\n  best: "
            << AccessSequence(simple_outcome.best->plan, schema) << "  (cost "
            << simple_outcome.best->cost << ")\n";

  // Directories hold ~1000 rows each, but only ~50% of one directory also
  // matches the next (the overlap the paper's introduction discusses), and
  // the checking access is charged per input binding.
  CardinalityEstimates estimates;
  estimates.default_cardinality = 1000;
  estimates.join_overlap = 0.5;
  CardinalityCostFunction cardinality(&schema, estimates);
  SearchOutcome card_outcome = RunWith(scenario, accessible, cardinality);
  std::cout << "cardinality-aware cost (per estimated binding):\n  best: "
            << AccessSequence(card_outcome.best->plan, schema) << "  (cost "
            << card_outcome.best->cost << ")\n";
  std::cout << "(same proof search, different cost oracle: the intersection "
               "plan only wins under the binding-aware model)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintReproduction();
  return 0;
}
