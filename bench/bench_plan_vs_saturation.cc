// Experiments E4 and E8: proof-derived plans vs the P_k saturation baseline
// of §3. E4 checks Theorem 8's shape — the proof-derived plan never makes
// more source calls than the baseline and both return the complete answer.
// E8 shows the baseline's combinatorial blow-up with the number of rounds k
// and the instance size (the paper: "certainly not feasible").

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/baseline/saturation.h"
#include "lcp/data/query_eval.h"
#include "lcp/planner/proof_search.h"
#include "lcp/runtime/executor.h"
#include "lcp/workload/scenarios.h"

namespace {

using namespace lcp;

Instance MakeTelephoneInstance(const Schema& schema, int entries) {
  Instance instance(&schema);
  for (int i = 0; i < entries; ++i) {
    instance.AddFact("Direct1", {Value::Int(100 + i), Value::Int(7 + i),
                                 Value::Int(9000 + i)});
    instance.AddFact("Direct2", {Value::Int(100 + i), Value::Int(7 + i),
                                 Value::Int(5550000 + i)});
    instance.AddFact("Ids", {Value::Int(9000 + i)});
    instance.AddFact("Names", {Value::Int(100 + i)});
  }
  return instance;
}

void BM_ProofPlanExecution(benchmark::State& state) {
  Scenario scenario = MakeTelephoneScenario().value();
  AccessibleSchema accessible =
      AccessibleSchema::Build(*scenario.schema, AccessibleVariant::kStandard)
          .value();
  FoundPlan found = FindAnyPlan(accessible, scenario.query, 5).value();
  Instance instance =
      MakeTelephoneInstance(*scenario.schema, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SimulatedSource source(scenario.schema.get(), &instance);
    auto run = ExecutePlan(found.plan, source);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_ProofPlanExecution)->Arg(10)->Arg(50)->Arg(200)->ArgName("rows");

void BM_SaturationExecution(benchmark::State& state) {
  Scenario scenario = MakeTelephoneScenario().value();
  Instance instance =
      MakeTelephoneInstance(*scenario.schema, static_cast<int>(state.range(0)));
  SaturationOptions options;
  options.rounds = 2;
  for (auto _ : state) {
    SimulatedSource source(scenario.schema.get(), &instance);
    auto run = RunSaturation(scenario.query, source, options);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_SaturationExecution)->Arg(10)->Arg(50)->ArgName("rows");

void PrintReproduction() {
  using std::setw;
  Scenario scenario = MakeTelephoneScenario().value();
  const Schema& schema = *scenario.schema;
  AccessibleSchema accessible =
      AccessibleSchema::Build(schema, AccessibleVariant::kStandard).value();
  FoundPlan found = FindAnyPlan(accessible, scenario.query, 5).value();

  std::cout << "\n=== E4/E8: proof plan vs saturation P_k (telephone "
               "schema) ===\n";
  std::cout << "rows | plan calls | plan answers | P_2 calls | P_2 answers "
               "| P_3 calls | P_3 answers | oracle\n";
  for (int rows : {5, 10, 20, 40}) {
    Instance instance = MakeTelephoneInstance(schema, rows);
    size_t oracle = EvaluateQuery(scenario.query, instance).size();

    SimulatedSource plan_source(&schema, &instance);
    ExecutionResult run = ExecutePlan(found.plan, plan_source).value();

    auto saturate = [&](int k) -> std::pair<std::string, std::string> {
      SimulatedSource source(&schema, &instance);
      SaturationOptions options;
      options.rounds = k;
      options.max_source_calls = 2000000;
      auto result = RunSaturation(scenario.query, source, options);
      if (!result.ok()) return {"BLOWUP", "-"};
      return {std::to_string(result->source_calls),
              std::to_string(result->answers.size())};
    };
    auto [p2_calls, p2_answers] = saturate(2);
    auto [p3_calls, p3_answers] = saturate(3);
    std::cout << setw(4) << rows << " | " << setw(10) << run.source_calls
              << " | " << setw(12) << run.output.size() << " | " << setw(9)
              << p2_calls << " | " << setw(11) << p2_answers << " | "
              << setw(9) << p3_calls << " | " << setw(11) << p3_answers
              << " | " << oracle << "\n";
  }
  std::cout << "shape check (Theorem 8): the proof-derived plan is complete "
               "and makes orders of magnitude fewer calls; P_2 is not yet "
               "complete on this schema (phones need 3 hops), P_3 is "
               "complete but blows up.\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintReproduction();
  return 0;
}
