// Experiment E9 (Theorem 4, Access Interpolation): entailment proving and
// interpolant extraction with the tableau prover. The theorem's effective
// content is that interpolants come out of proofs in polynomial time; we
// measure extraction cost as rule chains grow and report the interpolant
// properties on the paper's Example 3 entailment.

#include <benchmark/benchmark.h>

#include <iostream>

#include "lcp/accessible/accessible_schema.h"
#include "lcp/interp/encode.h"
#include "lcp/interp/tableau.h"
#include "lcp/schema/parser.h"
#include "lcp/workload/scenarios.h"

namespace {

using namespace lcp;

/// P0(1) ∧ ∀x(P0→P1) ∧ ... ∧ ∀x(P{n-1}→Pn)  ⊨  Pn(1).
struct ChainCase {
  Schema schema;
  FormulaPtr premise;
  FormulaPtr conclusion;
};

ChainCase MakeChainCase(int n) {
  ChainCase c;
  std::vector<RelationId> rels;
  for (int i = 0; i <= n; ++i) {
    rels.push_back(c.schema.AddRelation("P" + std::to_string(i), 1).value());
  }
  std::vector<FormulaPtr> parts;
  parts.push_back(
      Formula::MakeAtom(Atom(rels[0], {Term::Const(int64_t{1})})));
  for (int i = 0; i < n; ++i) {
    parts.push_back(Formula::Forall(
        {"x"}, Atom(rels[i], {Term::Var("x")}),
        Formula::MakeAtom(Atom(rels[i + 1], {Term::Var("x")}))));
  }
  c.premise = Formula::And(std::move(parts));
  c.conclusion = Formula::MakeAtom(Atom(rels[n], {Term::Const(int64_t{1})}));
  return c;
}

void BM_InterpolateChain(benchmark::State& state) {
  ChainCase c = MakeChainCase(static_cast<int>(state.range(0)));
  TableauOptions options;
  options.max_steps = 1000000;
  for (auto _ : state) {
    auto result =
        ProveAndInterpolate(c.schema, c.premise, c.conclusion, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_InterpolateChain)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->ArgName("chain");

void BM_Example3Entailment(benchmark::State& state) {
  Scenario scenario = MakeProfinfoScenario(true).value();
  AccessibleSchema acc =
      AccessibleSchema::Build(*scenario.schema, AccessibleVariant::kStandard)
          .value();
  std::vector<FormulaPtr> parts;
  parts.push_back(QueryToSentence(scenario.query).value());
  for (const Tgd& tgd : acc.AllAxioms()) {
    parts.push_back(TgdToFormula(tgd).value());
  }
  FormulaPtr premise = Formula::And(std::move(parts));
  FormulaPtr conclusion =
      QueryToSentence(acc.InferredAccQuery(scenario.query)).value();
  TableauOptions options;
  options.max_steps = 1000000;
  for (auto _ : state) {
    auto result = ProveAndInterpolate(acc.schema(), premise, conclusion,
                                      options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Example3Entailment);

void PrintReproduction() {
  std::cout << "\n=== E9: interpolation (Theorem 4) ===\n";
  std::cout << "chain n | proved | rule applications | interpolant\n";
  for (int n : {1, 2, 4, 8, 16}) {
    ChainCase c = MakeChainCase(n);
    TableauOptions options;
    options.max_steps = 1000000;
    auto result =
        ProveAndInterpolate(c.schema, c.premise, c.conclusion, options);
    std::cout << "  " << n << "      | "
              << (result.ok() && result->proved ? "yes" : "no ") << "   | "
              << (result.ok() ? result->rule_applications : -1) << " | "
              << (result.ok() && result->proved
                      ? result->interpolant->ToString(c.schema)
                      : std::string("-"))
              << "\n";
  }

  Scenario scenario = MakeProfinfoScenario(true).value();
  AccessibleSchema acc =
      AccessibleSchema::Build(*scenario.schema, AccessibleVariant::kStandard)
          .value();
  std::vector<FormulaPtr> parts;
  parts.push_back(QueryToSentence(scenario.query).value());
  for (const Tgd& tgd : acc.AllAxioms()) {
    parts.push_back(TgdToFormula(tgd).value());
  }
  TableauOptions options;
  options.max_steps = 1000000;
  auto result = ProveAndInterpolate(
      acc.schema(), Formula::And(std::move(parts)),
      QueryToSentence(acc.InferredAccQuery(scenario.query)).value(), options);
  std::cout << "Example 3 (Q entails InferredAccQ over AcSch): "
            << (result.ok() && result->proved ? "PROVED" : "not proved")
            << " in " << (result.ok() ? result->rule_applications : -1)
            << " rule applications\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintReproduction();
  return 0;
}
